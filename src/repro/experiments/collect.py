"""Assemble EXPERIMENTS.md from the benchmark artifacts.

Every benchmark writes its rendered panel to
``benchmarks/results/<id>.txt``; this module pairs those artifacts with
the paper's reported numbers and emits the paper-vs-measured record the
repository ships as ``EXPERIMENTS.md``.

Usage::

    python -m repro.experiments.collect [results_dir] [output_md]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

#: What the paper reports, per experiment — the "expected shape" column.
PAPER_TARGETS = {
    "fig02": ("TELE probe, popular: ~70% of returned addresses from "
              "TELE; >85% of transmissions and bytes from TELE."),
    "fig03": ("TELE probe, unpopular: TELE and CNC returned counts "
              "comparable (CNC slightly larger); ~55% of bytes from "
              "TELE, ~18% from CNC."),
    "fig04": ("Mason probe, popular: >55% of transmissions/bytes from "
              "Foreign; TELE/CNC peers return >75% own-ISP entries."),
    "fig05": ("Mason probe, unpopular: downloads dominated by Chinese "
              "peers (mostly CNC) — too few Foreign viewers."),
    "fig06": ("28-day campaign: China locality high and stable for the "
              "popular program; Mason swings widely day to day; "
              "unpopular locality lower."),
    "fig07": ("TELE probe, popular peer-list responses: avg TELE "
              "1.1482s < CNC 1.5640s; OTHER 0.9892s."),
    "fig08": ("TELE probe, unpopular: TELE 0.7168s < CNC 0.8466s < "
              "OTHER 0.9077s; smaller gaps than Fig 7."),
    "fig09": ("Mason probe, popular: OTHER 0.2506s < TELE 0.3429s < "
              "CNC 0.3733s."),
    "fig10": ("Mason probe, unpopular: OTHER 0.4690s < TELE 0.5057s < "
              "CNC 0.6347s; all slower than Fig 9."),
    "table1": ("Data-request response times: TELE-Popular row 0.7889/"
               "1.3155/0.7052 (TELE/CNC/OTHER); for unpopular programs "
               "the probe's own group is fastest."),
    "fig11": ("TELE popular: 326 connected of 3812 listed (~9%); SE fit "
              "c=0.35, R^2=0.956 (Zipf fails); top 10% upload ~73% of "
              "bytes; ~74% of connected peers are TELE."),
    "fig12": ("TELE unpopular: 226 connected of 463 listed; SE c=0.4, "
              "R^2=0.987; top 10% upload ~67%."),
    "fig13": ("Mason popular: 233 connected of 3964 listed; Foreign "
              "over-represented among connected peers; SE c=0.2, "
              "R^2=0.998; top 10% upload ~82%."),
    "fig14": ("Mason unpopular: 89 connected of 429 listed (~20%); SE "
              "c=0.3, R^2=0.991; top 10% upload ~77%."),
    "fig15": ("TELE popular: log-log correlation(#requests, RTT) = "
              "-0.654; top connected peers have smaller RTT."),
    "fig16": ("TELE unpopular: correlation -0.396 (weaker but "
              "prominent)."),
    "fig17": ("Mason popular: correlation -0.679."),
    "fig18": ("Mason unpopular: correlation -0.450 (less pronounced)."),
    "overlay": ("Not a paper figure: quantifies the 'triangle "
                "construction' clustering the paper credits for the "
                "locality."),
    "ablation_a1_a3": ("DESIGN ablation: PPLive referral vs tracker-only "
                       "random vs oracle baselines."),
    "ablation_a2": ("DESIGN ablation: latency-driven neighbor "
                    "replacement on vs off."),
    "ablation_a4": ("DESIGN ablation: audience size sweep."),
    "ablation_a5": ("Paper Section 3.4 suggestion: cache the top 10% "
                    "responders."),
    "ablation_a6": ("Paper reference [28]: ISP-aware tracker vs plain "
                    "tracker."),
}

#: Experiment ordering in the generated document.
DOCUMENT_ORDER = (
    "fig02", "fig03", "fig04", "fig05", "fig06",
    "fig07", "fig08", "fig09", "fig10", "table1",
    "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "fig17", "fig18",
    "overlay",
    "ablation_a1_a3", "ablation_a2", "ablation_a4", "ablation_a5",
    "ablation_a6",
)

HEADER = """\
# EXPERIMENTS — paper vs measured

Regenerated from the benchmark artifacts in `benchmarks/results/`
(`pytest benchmarks/ --benchmark-only` rewrites them; then
`python -m repro.experiments.collect` rebuilds this file).

Absolute numbers are not expected to match the paper: the substrate is a
~100-peer deterministic simulator, not the 2008 PPLive network with
thousands of concurrent viewers per channel.  What must match — and is
asserted by the benchmark suite — is the *shape*: which ISP wins each
panel, the orderings of the response-time groups, which model fits the
rank distributions, and the signs/relative magnitudes of the
correlations.

## Known deviations and why

* **Locality magnitudes are lower** (e.g. Fig 2 byte locality ~60-75 %
  simulated vs 85 % measured; Fig 11 top-10 % share ~40-50 % vs 73 %).
  Clustering strength grows with swarm size and session length; a
  ~100-peer swarm watched for 20-25 minutes cannot concentrate as hard
  as a many-thousand-peer swarm watched for 2 hours.  Running with
  ``REPRO_BENCH_SCALE=full`` closes part of the gap.
* **CNC-probe locality trails TELE-probe locality** in Figure 6 more
  than in the paper, because our popular-audience mix gives CNC a
  smaller viewer share than TELE; the paper's audiences were large on
  both carriers.
* **Aggregate response times are larger** (~0.8-1.3 s vs 0.2-1.3 s):
  our sub-piece batches (10x1380 B per request) are bigger than single
  sub-piece exchanges, shifting every response-time figure upward while
  preserving the group orderings.
* **The probe's source-server fallback traffic is excluded** from the
  peer statistics: at simulation scale the origin serves a visibly
  larger relative share than PPLive's origin did, and the paper's
  statistics count viewer peers.

"""


@dataclass
class CollectedExperiment:
    experiment_id: str
    paper: str
    measured: Optional[str]

    def render(self) -> str:
        lines = [f"## {self.experiment_id}", ""]
        lines.append(f"**Paper:** {self.paper}")
        lines.append("")
        if self.measured is None:
            lines.append("**Measured:** _no artifact found — run "
                         "`pytest benchmarks/ --benchmark-only`_")
        else:
            lines.append("**Measured:**")
            lines.append("")
            lines.append("```")
            lines.append(self.measured.rstrip())
            lines.append("```")
        lines.append("")
        return "\n".join(lines)


def collect(results_dir: Path) -> List[CollectedExperiment]:
    """Pair every known experiment with its artifact, if present."""
    collected = []
    for experiment_id in DOCUMENT_ORDER:
        artifact = results_dir / f"{experiment_id}.txt"
        measured = (artifact.read_text(encoding="utf-8")
                    if artifact.exists() else None)
        collected.append(CollectedExperiment(
            experiment_id=experiment_id,
            paper=PAPER_TARGETS[experiment_id],
            measured=measured))
    return collected


def build_document(results_dir: Path) -> str:
    """The full EXPERIMENTS.md content."""
    parts = [HEADER]
    found = 0
    for experiment in collect(results_dir):
        if experiment.measured is not None:
            found += 1
        parts.append(experiment.render())
    parts.insert(1, f"_Artifacts present: {found}/{len(DOCUMENT_ORDER)}_\n")
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    results_dir = Path(argv[0]) if argv else Path("benchmarks/results")
    output = Path(argv[1]) if len(argv) > 1 else Path("EXPERIMENTS.md")
    if not results_dir.is_dir():
        print(f"results directory {results_dir} not found",
              file=sys.stderr)
        return 2
    output.write_text(build_document(results_dir), encoding="utf-8")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
