"""Figures 11-14: per-neighbor connections and contributions.

Panels, per canonical session:

(a) distribution of unique connected (data-transfer) peers by ISP,
(b) per-peer data-request rank distribution, fitted with both a
    stretched-exponential model (expected to fit) and a Zipf model
    (expected not to), with the SE parameters ``c, a, b`` and R² values,
(c) CDF of per-peer byte contributions, with the top-10 % share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.contributions import (ContributionAnalysis,
                                      analyze_contributions)
from ..analysis.locality import CATEGORY_ORDER, unique_listed_peers
from ..analysis.report import format_table, percentage
from ..workload.scenario import SessionResult


@dataclass
class ContributionFigure:
    """One of Figures 11-14."""

    figure_id: str
    title: str
    analysis: ContributionAnalysis
    unique_listed: int

    @property
    def connected_fraction_of_listed(self) -> Optional[float]:
        """Connected unique peers over unique listed peers (paper: ~9 %
        for the TELE popular session, ~20 % for Mason unpopular)."""
        if self.unique_listed == 0:
            return None
        return self.analysis.connected_unique / self.unique_listed

    def render(self) -> str:
        a = self.analysis
        lines: List[str] = [
            f"=== {self.figure_id}: {self.title} ===",
            "",
            "(a) unique connected peers (data transfer) by ISP:",
        ]
        total = a.connected_unique
        rows = [[str(c), a.connected_by_isp.get(c, 0),
                 percentage(a.connected_by_isp.get(c, 0), total)]
                for c in CATEGORY_ORDER]
        lines.append(format_table(["ISP", "peers", "share"], rows))
        fraction = self.connected_fraction_of_listed
        lines.append(
            f"  {total} connected of {self.unique_listed} unique listed "
            f"peers"
            + (f" ({fraction:.1%})" if fraction is not None else ""))
        lines.append("")
        lines.append("(b) data-request rank distribution fits:")
        if a.se_fit is not None and a.zipf_fit is not None:
            se = a.se_fit
            lines.append(
                f"  stretched exponential: c = {se.c:.2f}, a = {se.a:.3f}, "
                f"b = {se.b:.3f}, R^2 = {se.r_squared:.6f} (n = {se.n})")
            lines.append(
                f"  Zipf (log-log line):   alpha = {a.zipf_fit.alpha:.3f}, "
                f"R^2 = {a.zipf_fit.r_squared:.6f}")
            winner = ("stretched exponential"
                      if se.r_squared >= a.zipf_fit.r_squared else "Zipf")
            lines.append(f"  better fit: {winner}")
        else:
            lines.append("  (too few connected peers to fit)")
        lines.append("")
        lines.append("(c) contribution concentration:")
        if a.top10_byte_share is not None:
            lines.append(f"  top 10% of connected peers uploaded "
                         f"{a.top10_byte_share:.1%} of the bytes")
        if a.top10_request_share is not None:
            lines.append(f"  top 10% of connected peers received "
                         f"{a.top10_request_share:.1%} of the requests")
        return "\n".join(lines)


def contribution_figure(result: SessionResult, figure_id: str,
                        title: str) -> ContributionFigure:
    """Build one of Figures 11-14 from a canonical session."""
    probe = result.probe()
    analysis = analyze_contributions(probe.report.data, result.directory,
                                     result.infrastructure)
    listed = unique_listed_peers(probe.trace, result.infrastructure)
    return ContributionFigure(figure_id=figure_id, title=title,
                              analysis=analysis,
                              unique_listed=len(listed))
