"""Resilience experiment: adversarial peers vs the hardened protocol.

``repro run resilience`` sweeps misbehaving-peer models
(:mod:`repro.adversary`) over attachment fractions and scores each cell
against a clean baseline simulated from the same seed: transit-byte
locality (the paper's headline metric, from the flow ledger), playback
continuity, startup delay, and the contribution-rank shape (top-10%
upload share, the Figure 11-14 statistic).  Every cell runs with
:meth:`repro.protocol.ProtocolConfig.hardened` defenses on — including
the baseline, so deltas isolate the adversaries' damage rather than the
defenses' cost.

Determinism: cells are independent :mod:`repro.parallel` jobs whose
results carry only plain data; all experiment-level observability is
emitted by the parent after the deterministic merge, so artifacts are
byte-identical for every ``--jobs`` value.  With ``--checkpoint`` each
finished cell is persisted as a digest-stamped artifact
(:mod:`repro.checkpoint`) and ``--resume`` replays persisted cells
instead of re-simulating, byte-identically — the same contract the
fig06 campaign honours (``docs/CHECKPOINT.md``).
"""

from __future__ import annotations

import math
import os
import signal
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..adversary import ADVERSARY_BEHAVIORS
from ..analysis.report import format_table
from ..checkpoint import (CampaignCheckpointStore, CheckpointPolicy,
                          config_digest_of)
from ..faults import AdversaryEvent, FaultSchedule
from ..obs import INFO, FlowSpec, Instrumentation
from ..obs import resolve as resolve_obs
from ..obs.flows import intra_share, transit_share
from ..parallel.jobs import Job, run_jobs
from ..protocol.config import ProtocolConfig
from ..workload.popularity import popular_channel_mix
from ..workload.scenario import TELE_PROBE, ScenarioConfig, SessionScenario
from .base import SCALE_PARAMS, Scale
from .scorecard import Statistic

#: Default attachment fractions swept per behavior.
DEFAULT_FRACTIONS: Tuple[float, ...] = (0.1, 0.3)

#: Continuity may drop at most this much below the clean baseline.
CONTINUITY_TOLERANCE = 0.15
#: Transit-byte share may rise at most this much above the baseline.
TRANSIT_TOLERANCE = 0.15
#: Mean startup delay may rise at most this many seconds.
STARTUP_TOLERANCE = 10.0
#: Top-10% upload share must stay within this of the baseline's shape.
TOP10_TOLERANCE = 0.25

#: ``cell:events`` — when set, the matching resilience cell SIGKILLs its
#: own process once the simulator has executed that many events.
#: Test-only seam for the kill/resume suite, mirroring the campaign's
#: ``REPRO_CAMPAIGN_SIGKILL``.
KILL_SWITCH_ENV = "REPRO_RESILIENCE_SIGKILL"


@dataclass(frozen=True)
class ResilienceParams:
    """Everything one resilience cell job needs (picklable)."""

    seed: int
    population: int
    warmup: float
    duration: float
    fractions: Tuple[float, ...]
    behaviors: Tuple[str, ...]

    @property
    def end_time(self) -> float:
        return self.warmup + self.duration


def resilience_params(scale: Scale = Scale.DEFAULT, seed: int = 7,
                      fractions: Optional[Tuple[float, ...]] = None,
                      behaviors: Optional[Tuple[str, ...]] = None
                      ) -> ResilienceParams:
    params = SCALE_PARAMS[scale]
    if fractions is None:
        fractions = DEFAULT_FRACTIONS
    if behaviors is None:
        behaviors = ADVERSARY_BEHAVIORS
    for behavior in behaviors:
        if behavior not in ADVERSARY_BEHAVIORS:
            raise ValueError(
                f"unknown adversary behavior {behavior!r}; expected one "
                f"of {list(ADVERSARY_BEHAVIORS)}")
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fractions must be in (0, 1]")
    return ResilienceParams(
        seed=seed, population=params.popular_population,
        warmup=params.warmup, duration=params.duration,
        fractions=tuple(fractions), behaviors=tuple(behaviors))


@dataclass(frozen=True)
class Cell:
    """One point of the sweep; index 0 is the clean baseline."""

    index: int
    behavior: str  # "" for the baseline
    fraction: float  # 0.0 for the baseline

    @property
    def label(self) -> str:
        if not self.behavior:
            return "baseline"
        return f"{self.behavior}@{self.fraction:g}"


def build_cells(params: ResilienceParams) -> List[Cell]:
    cells = [Cell(index=0, behavior="", fraction=0.0)]
    for behavior in params.behaviors:
        for fraction in params.fractions:
            cells.append(Cell(index=len(cells), behavior=behavior,
                              fraction=fraction))
    return cells


def _kill_switch_hook(index: int) -> Optional[Callable]:
    spec = os.environ.get(KILL_SWITCH_ENV)
    if not spec:
        return None
    try:
        cell_text, events_text = spec.split(":")
        target_cell = int(cell_text)
        threshold = int(events_text)
    except ValueError:
        raise ValueError(
            f"{KILL_SWITCH_ENV} must be 'cell:events', got {spec!r}")
    if target_cell != index:
        return None

    def hook(sim, deployment, manager, probe_peers) -> None:
        def check() -> None:
            if sim.events_executed >= threshold:
                os.kill(os.getpid(), signal.SIGKILL)
        sim.every(1.0, check, label="kill-switch")

    return hook


def _resilience_cell_job(params: ResilienceParams, cell: Cell) -> dict:
    """Worker entry point: one hardened session, clean or adversarial.

    Returns a plain JSON-safe dict so cell results checkpoint and merge
    without any pickle-only state.
    """
    schedule = None
    if cell.behavior:
        schedule = FaultSchedule(events=(
            AdversaryEvent(behavior=cell.behavior, start=0.0,
                           duration=params.end_time,
                           fraction=cell.fraction, label=cell.label),))
    config = ScenarioConfig(
        seed=params.seed,
        population=params.population,
        mix=popular_channel_mix(),
        probes=(TELE_PROBE,),
        warmup=params.warmup,
        duration=params.duration,
        protocol=ProtocolConfig().hardened(),
        flows=FlowSpec(),
        faults=schedule,
        run_hook=_kill_switch_hook(cell.index),
    )
    result = SessionScenario(config).run()

    probe = result.probe()
    player = probe.peer.player
    continuity = player.continuity_index if player is not None else 0.0
    startup = player.startup_delay if player is not None else None

    totals = result.flows.totals
    total_bytes = totals.get("bytes", 0)
    adversarial = totals.get("adversarial_bytes", 0)

    viewers = list(result.population.active) + [probe.peer]

    def total(counter: str) -> int:
        return sum(int(getattr(v, counter, 0)) for v in viewers)

    uploads = sorted((int(getattr(v, "bytes_uploaded", 0))
                      for v in viewers), reverse=True)
    upload_total = sum(uploads)
    top10_share = None
    if upload_total:
        top = max(1, math.ceil(0.1 * len(uploads)))
        top10_share = sum(uploads[:top]) / upload_total

    injector = result.injector
    return {
        "behavior": cell.behavior,
        "fraction": cell.fraction,
        "continuity": round(continuity, 6),
        "startup_delay": (round(startup, 6) if startup is not None
                          else None),
        "transit_share": round(transit_share(totals), 6),
        "intra_share": round(intra_share(totals), 6),
        "adversarial_byte_share": (round(adversarial / total_bytes, 6)
                                   if total_bytes else 0.0),
        "top10_upload_share": (round(top10_share, 6)
                               if top10_share is not None else None),
        "adversaries_attached": (injector.adversaries_attached
                                 if injector is not None else 0),
        "poisoned_replies": total("poisoned_replies"),
        "chunks_refetched": total("chunks_refetched"),
        "neighbors_banned": total("neighbors_banned"),
        "requests_rate_limited": total("requests_rate_limited"),
        "rejected_messages": total("rejected_messages"),
    }


# ----------------------------------------------------------------------
# Scoring and reports
# ----------------------------------------------------------------------
#: Fields a restored checkpoint payload must carry for a cell.
_CELL_FIELDS = (
    "behavior", "fraction", "continuity", "startup_delay",
    "transit_share", "intra_share", "adversarial_byte_share",
    "top10_upload_share", "adversaries_attached", "poisoned_replies",
    "chunks_refetched", "neighbors_banned", "requests_rate_limited",
    "rejected_messages")


def _cell_payload(outcome: dict) -> dict:
    """The checkpoint body of one cell, in stable field order."""
    return {name: outcome[name] for name in _CELL_FIELDS}


def score_cells(cells: List[Cell], outcomes: Dict[int, dict]
                ) -> List[Statistic]:
    """Judge every adversarial cell against the clean baseline.

    Each statistic's target interval is the baseline's value widened by
    the metric's tolerance: the claim is not that adversaries cost
    nothing, but that the hardened protocol keeps the damage bounded.
    """
    baseline = outcomes[0]
    statistics: List[Statistic] = []
    for cell in cells[1:]:
        outcome = outcomes[cell.index]
        label = cell.label
        base_cont = baseline["continuity"]
        statistics.append(Statistic(
            label, "continuity", outcome["continuity"],
            (max(0.0, base_cont - CONTINUITY_TOLERANCE), 1.0),
            note="probe continuity index vs clean baseline"))
        base_transit = baseline["transit_share"]
        statistics.append(Statistic(
            label, "transit byte share", outcome["transit_share"],
            (0.0, min(1.0, base_transit + TRANSIT_TOLERANCE)),
            note="share of delivered bytes crossing an AS"))
        base_startup = baseline["startup_delay"]
        statistics.append(Statistic(
            label, "startup delay", outcome["startup_delay"],
            ((0.0, base_startup + STARTUP_TOLERANCE)
             if base_startup is not None else None),
            unit="s"))
        base_top10 = baseline["top10_upload_share"]
        statistics.append(Statistic(
            label, "top-10% upload share", outcome["top10_upload_share"],
            ((max(0.0, base_top10 - TOP10_TOLERANCE),
              min(1.0, base_top10 + TOP10_TOLERANCE))
             if base_top10 is not None else None),
            note="contribution-rank shape (fig11-14 statistic)"))
    return statistics


@dataclass
class ResilienceResult:
    """Everything ``repro run resilience`` produced."""

    params: ResilienceParams
    cells: List[Cell]
    #: cell index -> the worker's plain-data outcome.
    outcomes: Dict[int, dict]
    statistics: List[Statistic]

    @property
    def baseline(self) -> dict:
        return self.outcomes[0]

    @property
    def degraded(self) -> int:
        return sum(1 for s in self.statistics if s.status == "deviates")

    @property
    def scored(self) -> int:
        return sum(1 for s in self.statistics if s.status != "n/a")

    def render(self) -> str:
        def pct(value) -> str:
            return "-" if value is None else f"{100.0 * value:.1f}%"

        def seconds(value) -> str:
            return "-" if value is None else f"{value:.1f}s"

        by_cell: Dict[str, List[Statistic]] = {}
        for statistic in self.statistics:
            by_cell.setdefault(statistic.figure, []).append(statistic)

        rows = []
        for cell in self.cells[1:]:
            outcome = self.outcomes[cell.index]
            verdicts = by_cell.get(cell.label, [])
            bad = sum(1 for s in verdicts if s.status == "deviates")
            rows.append([
                cell.label,
                f"{outcome['adversaries_attached']}",
                pct(outcome["continuity"]),
                pct(outcome["transit_share"]),
                seconds(outcome["startup_delay"]),
                pct(outcome["top10_upload_share"]),
                pct(outcome["adversarial_byte_share"]),
                f"{outcome['neighbors_banned']}",
                f"{outcome['chunks_refetched']}",
                f"{outcome['requests_rate_limited']}",
                "ok" if bad == 0 else f"{bad} degraded",
            ])
        table = format_table(
            ["cell", "adv", "cont", "transit", "startup", "top10%",
             "adv-bytes", "banned", "refetched", "capped", "verdict"],
            rows)
        base = self.baseline
        lines = [
            "resilience: adversarial peers vs the hardened protocol",
            f"  seed={self.params.seed} population="
            f"{self.params.population} "
            f"window={self.params.warmup:.0f}+"
            f"{self.params.duration:.0f}s "
            f"cells={len(self.cells)} (1 baseline + "
            f"{len(self.cells) - 1} adversarial)",
            f"  baseline: continuity={pct(base['continuity'])} "
            f"transit={pct(base['transit_share'])} "
            f"startup={seconds(base['startup_delay'])} "
            f"top10%={pct(base['top10_upload_share'])}",
            f"  verdicts: {self.scored - self.degraded}/{self.scored} "
            f"statistics inside tolerance of the baseline",
            "",
            table,
            "",
            "  cont/transit/startup/top10% = the cell's own metrics;",
            "  adv-bytes = share of delivered bytes sent by adversarial",
            "  peers; banned/refetched/capped = defense counters.",
            "  A cell degrades when a metric leaves the baseline's",
            "  tolerance band (see the module's *_TOLERANCE knobs).",
        ]
        return "\n".join(lines)


def _emit_resilience(obs: Instrumentation,
                     result: ResilienceResult) -> None:
    """Parent-side observability: deterministic regardless of --jobs."""
    if not obs.enabled:
        return
    metrics = obs.metrics
    base = result.baseline
    metrics.gauge("resilience.continuity_baseline").set(
        base["continuity"])
    metrics.gauge("resilience.transit_share_baseline").set(
        base["transit_share"])
    for cell in result.cells[1:]:
        outcome = result.outcomes[cell.index]
        tags = {"cell": cell.label}
        metrics.counter("resilience.cells", tags).inc()
        metrics.gauge("resilience.continuity", tags).set(
            outcome["continuity"])
        metrics.gauge("resilience.transit_share", tags).set(
            outcome["transit_share"])
        metrics.gauge("resilience.adversaries_attached", tags).set(
            outcome["adversaries_attached"])
        metrics.gauge("resilience.neighbors_banned", tags).set(
            outcome["neighbors_banned"])
    if obs.trace.enabled_for(INFO):
        obs.trace.emit(0.0, INFO, "resilience_report",
                       cells=len(result.cells) - 1,
                       degraded=result.degraded,
                       scored=result.scored)


def resilience_config_digest(params: ResilienceParams) -> str:
    """Digest of every cell-result-affecting field (checkpoint guard)."""
    return config_digest_of({
        "experiment": "resilience",
        "seed": params.seed,
        "population": params.population,
        "warmup": params.warmup,
        "duration": params.duration,
        "fractions": list(params.fractions),
        "behaviors": list(params.behaviors),
    })


def run_resilience(scale: Scale = Scale.DEFAULT, seed: int = 7,
                   instrumentation: Optional[Instrumentation] = None,
                   jobs: int = 1,
                   fractions: Optional[Tuple[float, ...]] = None,
                   behaviors: Optional[Tuple[str, ...]] = None,
                   checkpoint: Optional[CheckpointPolicy] = None
                   ) -> ResilienceResult:
    """Run the resilience sweep; byte-identical for every ``jobs``.

    Cells are independent jobs fanned out to ``jobs`` worker processes.
    ``checkpoint`` persists finished cells (``--checkpoint DIR``) and
    replays them on ``--resume``, byte-identically — the cell key is
    ``("cell", index)`` in the campaign checkpoint store.
    """
    params = resilience_params(scale, seed, fractions, behaviors)
    cells = build_cells(params)

    store: Optional[CampaignCheckpointStore] = None
    digest = ""
    restored: Dict[Tuple[str, int], dict] = {}
    if checkpoint is not None:
        store = CampaignCheckpointStore(checkpoint.path)
        digest = resilience_config_digest(params)
        if checkpoint.resume:
            store.load_manifest(digest)
            restored = store.load_units(digest)
        else:
            store.initialize(digest, seed=params.seed, days=0,
                             total_units=len(cells))

    job_list = [Job(key=("cell", cell.index), fn=_resilience_cell_job,
                    args=(params, cell)) for cell in cells]
    merged: Dict[Tuple[str, int], dict] = {
        key: _cell_payload(payload) for key, payload in restored.items()}
    pending = [job for job in job_list if job.key not in merged]
    if store is None:
        merged.update(run_jobs(pending, workers=jobs, obs=None))
    else:
        # Batches below ``jobs`` would serialise the pool, so the flush
        # interval is at least one full batch of workers.
        batch = max(checkpoint.every, jobs)
        for index in range(0, len(pending), batch):
            chunk = pending[index:index + batch]
            done = run_jobs(chunk, workers=jobs, obs=None)
            for key in sorted(done):
                store.write_unit(key, digest, _cell_payload(done[key]))
            merged.update(done)

    outcomes = {key[1]: _cell_payload(payload)
                for key, payload in merged.items()}
    result = ResilienceResult(
        params=params, cells=cells, outcomes=outcomes,
        statistics=score_cells(cells, outcomes))
    _emit_resilience(resolve_obs(instrumentation), result)
    return result
