"""Machine-readable micro-benchmarks: the simulator's perf trajectory.

``repro bench`` runs two fixed-seed micro-benchmarks and writes one JSON
artifact each at the repository root:

* **engine** (``BENCH_engine.json``) — one canonical ``tele-popular``
  viewing session (the same workload behind
  ``benchmarks/test_bench_overlay.py``): events/second of the
  discrete-event core under real protocol traffic.
* **campaign** (``BENCH_campaign.json``) — the Figure 6 campaign; the
  ``quick`` profile is byte-for-byte the golden configuration of
  ``tests/test_campaign_goldens.py``, so its digest doubles as a
  correctness gate.

Each profile records events/sec, wall-clock seconds, peak RSS and a
**golden digest** computed purely from deterministic simulation outputs
(event/datagram counters, rendered Figure 6 table) — never from timing —
so the digest is machine-independent: it must match on any host, while
the wall/RSS fields chart the perf trajectory across commits.  CI runs
``repro bench --quick --check`` and fails when a digest drifts from the
committed baseline.

Each benchmark runs **twice**: a timing pass identical to the historical
semantics (no instrumentation on the engine bench, metrics-only on the
campaign bench), whose events/sec stays comparable with every committed
baseline, and an *attribution* pass with the engine profiler attached
(heartbeat sampler off, so the event stream is untouched) that buckets
the wall time per subsystem (:mod:`repro.obs.attribution`).  The
attribution pass's golden digest is cross-checked against the timing
pass — if profiling ever perturbed the simulation, the bench fails loud.

``repro bench --diff`` compares two artifacts (or a fresh run against
the committed baseline) and exits non-zero when events/sec regresses
beyond a threshold; per-subsystem deltas point at the guilty layer.
"""

from __future__ import annotations

import hashlib
import json
import platform as _platform
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

from ..obs import (EngineProfiler, Instrumentation, MetricsRegistry,
                   build_attribution, peak_rss_bytes, render_attribution)
from ..streaming.video import Popularity
from ..workload.campaign import CampaignConfig, run_campaign
from ..workload.scenario import SessionScenario
from .base import Scale, WorkloadKey, build_config
from .fig06 import Figure6

SCHEMA_VERSION = 1

ENGINE_FILE = "BENCH_engine.json"
CAMPAIGN_FILE = "BENCH_campaign.json"

ENGINE_PROFILES = ("quick", "default")
CAMPAIGN_PROFILES = ("quick", "default")


def _environment() -> dict:
    """Host fingerprint stored next to ``git_rev`` in every artifact.

    Wall-clock numbers are only comparable when they were measured on
    the same interpreter with the same fast-path dependencies;
    ``diff_records`` warns (never fails) when two artifacts disagree
    here, so a cross-machine comparison is flagged as apples-to-oranges
    instead of read as a regression.
    """
    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python_version": _platform.python_version(),
        "platform": _platform.platform(),
        "numpy": numpy_version,
    }


def _git_rev() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


#: Minimum attribution coverage the bench suite will accept: at least
#: this share of a profiled run's wall time must land in a named bucket.
MIN_ATTRIBUTION_COVERAGE = 0.9


def engine_config(profile: str, seed: int = 7):
    """Scenario behind one engine-bench profile.

    ``default`` is the canonical small-scale ``tele-popular`` session —
    the exact workload of ``benchmarks/test_bench_overlay.py`` at
    ``REPRO_BENCH_SCALE=small``; ``quick`` is a trimmed variant sized
    for a CI smoke step.
    """
    key = WorkloadKey("tele", Popularity.POPULAR, Scale.SMALL, seed)
    config = build_config(key)
    if profile == "quick":
        config.population = 24
        config.warmup = 90.0
        config.duration = 180.0
    elif profile != "default":
        raise ValueError(f"unknown engine profile {profile!r}")
    return config


def campaign_config(profile: str, seed: int = 11) -> CampaignConfig:
    """Campaign behind one campaign-bench profile.

    ``quick`` **is** the golden configuration pinned by
    ``tests/test_campaign_goldens.py`` (seed 11): its table digest must
    equal ``GOLDEN_TABLE_DIGEST`` there.
    """
    if profile == "quick":
        return CampaignConfig(seed=seed, days=3, popular_population=10,
                              unpopular_population=6,
                              session_duration=120.0, warmup=60.0)
    if profile == "default":
        return CampaignConfig(seed=seed, days=6, popular_population=14,
                              unpopular_population=8,
                              session_duration=240.0, warmup=80.0)
    raise ValueError(f"unknown campaign profile {profile!r}")


def _series_digest(result) -> str:
    """Same formula as tests/test_campaign_goldens.py — keep in sync."""
    parts = []
    for popularity in (Popularity.POPULAR, Popularity.UNPOPULAR):
        for curve in ("CNC", "TELE", "Mason"):
            parts.append(",".join(f"{value:.9e}" for value
                                  in result.series(popularity, curve)))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def _engine_digest(result) -> str:
    """Machine-independent digest of one session's counters."""
    sim = result.deployment.sim
    udp = result.deployment.internet.udp
    counters = (sim.events_executed, udp.datagrams_sent,
                udp.datagrams_delivered, udp.datagrams_lost,
                udp.datagrams_dropped_uplink, udp.datagrams_dropped_offline,
                udp.datagrams_dropped_fault, udp.bytes_delivered)
    return hashlib.sha256(
        "|".join(str(value) for value in counters).encode()).hexdigest()


def _engine_attribution(profile: str, seed: int,
                        expected_digest: str) -> dict:
    """The attribution pass: same workload, profiler attached.

    The heartbeat sampler stays off (``heartbeat=False``) so the event
    stream — and with it ``events_executed`` and the golden digest — is
    byte-identical to the uninstrumented timing pass; the cross-check
    makes that a hard invariant, not an assumption.
    """
    profiler = EngineProfiler()
    config = engine_config(profile, seed)
    config = replace(config, instrumentation=Instrumentation(
        profiler=profiler, heartbeat=False))
    started = time.perf_counter()
    result = SessionScenario(config).run()
    wall = time.perf_counter() - started
    digest = _engine_digest(result)
    if digest != expected_digest:
        raise RuntimeError(
            f"engine:{profile} attribution pass diverged from timing pass "
            f"({digest[:12]}… != {expected_digest[:12]}…); profiling must "
            f"not perturb the simulation")
    return build_attribution(profiler, wall)


def run_engine_bench(profile: str = "quick", seed: int = 7,
                     attribution: bool = True) -> dict:
    """One engine micro-benchmark run; returns its record dict."""
    config = engine_config(profile, seed)
    started = time.perf_counter()
    result = SessionScenario(config).run()
    wall = time.perf_counter() - started
    sim = result.deployment.sim
    udp = result.deployment.internet.udp
    digest = _engine_digest(result)
    record = {
        "profile": profile,
        "seed": seed,
        "population": config.population,
        "sim_seconds": config.warmup + config.duration,
        "events": sim.events_executed,
        "datagrams_sent": udp.datagrams_sent,
        "datagrams_delivered": udp.datagrams_delivered,
        "wall_seconds": round(wall, 3),
        "events_per_sec": round(sim.events_executed / wall, 1),
        "peak_rss_bytes": peak_rss_bytes(),
        "golden_digest": digest,
    }
    if attribution:
        record["attribution"] = _engine_attribution(profile, seed, digest)
    return record


def _campaign_attribution(profile: str, seed: int,
                          expected_series: str) -> dict:
    """Campaign attribution pass (serial, profiler on, heartbeat off)."""
    profiler = EngineProfiler()
    config = campaign_config(profile, seed)
    config = replace(config, instrumentation=Instrumentation(
        metrics=MetricsRegistry(), profiler=profiler, heartbeat=False))
    started = time.perf_counter()
    result = run_campaign(config, jobs=1)
    wall = time.perf_counter() - started
    series = _series_digest(result)
    if series != expected_series:
        raise RuntimeError(
            f"campaign:{profile} attribution pass diverged from timing "
            f"pass ({series[:12]}… != {expected_series[:12]}…); profiling "
            f"must not perturb the simulation")
    return build_attribution(profiler, wall)


def run_campaign_bench(profile: str = "quick", seed: int = 11,
                       jobs: int = 1, attribution: bool = True) -> dict:
    """One campaign micro-benchmark run; returns its record dict."""
    config = campaign_config(profile, seed)
    metrics = MetricsRegistry()
    config = replace(config,
                     instrumentation=Instrumentation(metrics=metrics))
    started = time.perf_counter()
    result = run_campaign(config, jobs=jobs)
    wall = time.perf_counter() - started
    table = Figure6(result=result).render()
    table_digest = hashlib.sha256(table.encode()).hexdigest()
    events_counter = metrics.get("sim.events_executed")
    events = int(events_counter.value) if events_counter is not None else 0
    series = _series_digest(result)
    record = {
        "profile": profile,
        "seed": seed,
        "days": config.days,
        "jobs": jobs,
        "events": events,
        "wall_seconds": round(wall, 3),
        "events_per_sec": round(events / wall, 1) if events else None,
        "peak_rss_bytes": peak_rss_bytes(),
        "golden_digest": table_digest,
        "series_digest": series,
    }
    if attribution:
        record["attribution"] = _campaign_attribution(profile, seed, series)
    return record


def _load(path: Path) -> Optional[dict]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _merged(path: Path, benchmark: str, records: Dict[str, dict]) -> dict:
    """Existing file content with ``records`` profiles replaced."""
    existing = _load(path)
    profiles = dict(existing.get("profiles", {})) if existing else {}
    profiles.update(records)
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
        "command": "repro bench",
        "git_rev": _git_rev(),
        "environment": _environment(),
        "profiles": profiles,
    }


def _check_drift(baseline: Optional[dict], records: Dict[str, dict],
                 name: str, out) -> List[str]:
    failures = []
    base_profiles = (baseline or {}).get("profiles", {})
    for profile, record in records.items():
        pinned = base_profiles.get(profile, {}).get("golden_digest")
        measured = record["golden_digest"]
        if pinned is None:
            failures.append(f"{name}:{profile}: no committed baseline digest")
        elif pinned != measured:
            failures.append(f"{name}:{profile}: golden digest drifted "
                            f"(baseline {pinned[:12]}… != "
                            f"measured {measured[:12]}…)")
        else:
            print(f"[bench] {name}:{profile} digest OK "
                  f"({measured[:12]}…)", file=out)
    return failures


def load_bench(path: Path) -> dict:
    """Load one bench artifact, raising on unreadable/invalid files."""
    data = _load(Path(path))
    if data is None or "profiles" not in data:
        raise ValueError(f"not a bench artifact: {path}")
    return data


def _check_coverage(records: Dict[str, dict], name: str) -> List[str]:
    """Attribution coverage gate: buckets must explain the wall time."""
    failures = []
    for profile, record in records.items():
        attribution = record.get("attribution")
        if attribution is None:
            continue
        coverage = attribution.get("coverage", 0.0)
        if coverage < MIN_ATTRIBUTION_COVERAGE:
            failures.append(
                f"{name}:{profile}: attribution coverage {coverage:.1%} "
                f"below {MIN_ATTRIBUTION_COVERAGE:.0%} — a hot path is "
                f"running outside every subsystem bucket")
    return failures


def diff_records(base: dict, new: dict, threshold: float, name: str,
                 out) -> List[str]:
    """Per-profile perf deltas between two artifacts of one benchmark.

    Only an events/sec *drop* beyond ``threshold`` counts as a
    regression (wall time and attribution deltas are informational —
    they point at the layer, they don't gate).  Profiles present on only
    one side are reported but never fail the diff.
    """
    failures: List[str] = []
    base_env, new_env = base.get("environment"), new.get("environment")
    if base_env != new_env:
        # Older artifacts predate the environment header (None); either
        # way the wall-clock comparison below is cross-host, so say so.
        def _env_label(env: Optional[dict]) -> str:
            if not env:
                return "unrecorded"
            numpy_version = env.get("numpy")
            return (f"py {env.get('python_version', '?')} on "
                    f"{env.get('platform', '?')}, numpy "
                    f"{numpy_version if numpy_version else 'absent'}")
        print(f"[diff] {name}: WARNING environments differ — timing "
              f"deltas are apples-to-oranges\n"
              f"[diff]   baseline: {_env_label(base_env)}\n"
              f"[diff]   new:      {_env_label(new_env)}", file=out)
    base_profiles = base.get("profiles", {})
    new_profiles = new.get("profiles", {})
    for profile in sorted(set(base_profiles) | set(new_profiles)):
        if profile not in base_profiles or profile not in new_profiles:
            side = "baseline" if profile not in new_profiles else "new"
            print(f"[diff] {name}:{profile} only in {side} artifact; "
                  f"skipped", file=out)
            continue
        old, cur = base_profiles[profile], new_profiles[profile]
        if old.get("golden_digest") != cur.get("golden_digest"):
            print(f"[diff] {name}:{profile} golden digest differs — the "
                  f"workload changed; treat deltas as apples-to-oranges",
                  file=out)
        old_rate, new_rate = (old.get("events_per_sec"),
                              cur.get("events_per_sec"))
        if old_rate and new_rate:
            delta = (new_rate - old_rate) / old_rate
            verdict = ""
            if delta < -threshold:
                verdict = "  ** REGRESSION **"
                failures.append(
                    f"{name}:{profile}: events/sec regressed {delta:+.1%} "
                    f"({old_rate:.0f} -> {new_rate:.0f}, threshold "
                    f"-{threshold:.0%})")
            print(f"[diff] {name}:{profile} events/sec "
                  f"{old_rate:.0f} -> {new_rate:.0f} ({delta:+.1%})"
                  f"{verdict}", file=out)
        old_wall, new_wall = old.get("wall_seconds"), cur.get("wall_seconds")
        if old_wall and new_wall:
            delta = (new_wall - old_wall) / old_wall
            print(f"[diff] {name}:{profile} wall "
                  f"{old_wall:.2f}s -> {new_wall:.2f}s ({delta:+.1%})",
                  file=out)
        old_attr, new_attr = old.get("attribution"), cur.get("attribution")
        if old_attr and new_attr:
            for line in _attribution_delta_lines(old_attr, new_attr):
                print(f"[diff]   {line}", file=out)
    return failures


def _attribution_delta_lines(old: dict, new: dict) -> List[str]:
    """Per-subsystem wall deltas, largest absolute change first."""
    old_buckets = old.get("buckets", {})
    new_buckets = new.get("buckets", {})
    rows = []
    for bucket in set(old_buckets) | set(new_buckets):
        old_wall = old_buckets.get(bucket, {}).get("wall_seconds", 0.0)
        new_wall = new_buckets.get(bucket, {}).get("wall_seconds", 0.0)
        rows.append((abs(new_wall - old_wall), bucket, old_wall, new_wall))
    lines = []
    for _, bucket, old_wall, new_wall in sorted(
            rows, key=lambda row: (-row[0], row[1])):
        delta = new_wall - old_wall
        pct = f" ({delta / old_wall:+.1%})" if old_wall else ""
        lines.append(f"{bucket:<12} {old_wall:7.3f}s -> {new_wall:7.3f}s "
                     f"[{delta:+.3f}s]{pct}")
    return lines


def run_bench_diff(old_path: Path, new_path: Path,
                   threshold: float = 0.10, out=None) -> int:
    """Pure comparison of two bench artifacts; no simulation runs."""
    out = out if out is not None else sys.stderr
    old, new = load_bench(old_path), load_bench(new_path)
    name = new.get("benchmark") or old.get("benchmark") or "bench"
    failures = diff_records(old, new, threshold, name, out)
    for failure in failures:
        print(f"[bench] FAIL {failure}", file=out)
    return 1 if failures else 0


def run_bench(out_dir: Path, quick: bool = False, check: bool = False,
              baseline_dir: Optional[Path] = None,
              only: Optional[str] = None,
              engine_seed: int = 7, campaign_seed: int = 11,
              diff_baseline: bool = False, threshold: float = 0.10,
              out=None) -> int:
    """Run the bench suite; returns a process exit code.

    ``diff_baseline`` compares the fresh records against the committed
    artifacts (loaded *before* they are overwritten) and fails on
    events/sec regressions beyond ``threshold``.
    """
    out = out if out is not None else sys.stderr
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    baseline_dir = Path(baseline_dir) if baseline_dir is not None else None
    profiles = ("quick",) if quick else ("quick", "default")
    failures: List[str] = []

    if only in (None, "engine"):
        records = {}
        for profile in profiles:
            print(f"[bench] engine:{profile} (seed {engine_seed}) ...",
                  file=out)
            records[profile] = run_engine_bench(profile, engine_seed)
            print(f"[bench] engine:{profile} "
                  f"{records[profile]['events_per_sec']:.0f} events/sec "
                  f"in {records[profile]['wall_seconds']:.2f}s", file=out)
            print(render_attribution(records[profile].get("attribution")),
                  file=out)
        path = out_dir / ENGINE_FILE
        base = _load((baseline_dir or out_dir) / ENGINE_FILE)
        if check:
            failures += _check_drift(base, records, "engine", out)
        failures += _check_coverage(records, "engine")
        if diff_baseline:
            failures += diff_records(
                base or {},
                {"profiles": records, "environment": _environment()},
                threshold, "engine", out)
        path.write_text(json.dumps(_merged(path, "engine", records),
                                   indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"[bench] wrote {path}", file=out)

    if only in (None, "campaign"):
        records = {}
        for profile in profiles:
            print(f"[bench] campaign:{profile} (seed {campaign_seed}) ...",
                  file=out)
            records[profile] = run_campaign_bench(profile, campaign_seed)
            print(f"[bench] campaign:{profile} "
                  f"{records[profile]['wall_seconds']:.2f}s wall", file=out)
            print(render_attribution(records[profile].get("attribution")),
                  file=out)
        path = out_dir / CAMPAIGN_FILE
        base = _load((baseline_dir or out_dir) / CAMPAIGN_FILE)
        if check:
            failures += _check_drift(base, records, "campaign", out)
        failures += _check_coverage(records, "campaign")
        if diff_baseline:
            failures += diff_records(
                base or {},
                {"profiles": records, "environment": _environment()},
                threshold, "campaign", out)
        path.write_text(json.dumps(_merged(path, "campaign", records),
                                   indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"[bench] wrote {path}", file=out)

    for failure in failures:
        print(f"[bench] FAIL {failure}", file=out)
    return 1 if failures else 0
