"""Machine-readable micro-benchmarks: the simulator's perf trajectory.

``repro bench`` runs two fixed-seed micro-benchmarks and writes one JSON
artifact each at the repository root:

* **engine** (``BENCH_engine.json``) — one canonical ``tele-popular``
  viewing session (the same workload behind
  ``benchmarks/test_bench_overlay.py``): events/second of the
  discrete-event core under real protocol traffic.
* **campaign** (``BENCH_campaign.json``) — the Figure 6 campaign; the
  ``quick`` profile is byte-for-byte the golden configuration of
  ``tests/test_campaign_goldens.py``, so its digest doubles as a
  correctness gate.

Each profile records events/sec, wall-clock seconds, peak RSS and a
**golden digest** computed purely from deterministic simulation outputs
(event/datagram counters, rendered Figure 6 table) — never from timing —
so the digest is machine-independent: it must match on any host, while
the wall/RSS fields chart the perf trajectory across commits.  CI runs
``repro bench --quick --check`` and fails when a digest drifts from the
committed baseline.
"""

from __future__ import annotations

import hashlib
import json
import resource
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

from ..obs import Instrumentation, MetricsRegistry
from ..streaming.video import Popularity
from ..workload.campaign import CampaignConfig, run_campaign
from ..workload.scenario import SessionScenario
from .base import Scale, WorkloadKey, build_config
from .fig06 import Figure6

SCHEMA_VERSION = 1

ENGINE_FILE = "BENCH_engine.json"
CAMPAIGN_FILE = "BENCH_campaign.json"

ENGINE_PROFILES = ("quick", "default")
CAMPAIGN_PROFILES = ("quick", "default")


def _git_rev() -> str:
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def _peak_rss_bytes() -> int:
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalise to bytes.
    return usage * 1024 if sys.platform != "darwin" else usage


def engine_config(profile: str, seed: int = 7):
    """Scenario behind one engine-bench profile.

    ``default`` is the canonical small-scale ``tele-popular`` session —
    the exact workload of ``benchmarks/test_bench_overlay.py`` at
    ``REPRO_BENCH_SCALE=small``; ``quick`` is a trimmed variant sized
    for a CI smoke step.
    """
    key = WorkloadKey("tele", Popularity.POPULAR, Scale.SMALL, seed)
    config = build_config(key)
    if profile == "quick":
        config.population = 24
        config.warmup = 90.0
        config.duration = 180.0
    elif profile != "default":
        raise ValueError(f"unknown engine profile {profile!r}")
    return config


def campaign_config(profile: str, seed: int = 11) -> CampaignConfig:
    """Campaign behind one campaign-bench profile.

    ``quick`` **is** the golden configuration pinned by
    ``tests/test_campaign_goldens.py`` (seed 11): its table digest must
    equal ``GOLDEN_TABLE_DIGEST`` there.
    """
    if profile == "quick":
        return CampaignConfig(seed=seed, days=3, popular_population=10,
                              unpopular_population=6,
                              session_duration=120.0, warmup=60.0)
    if profile == "default":
        return CampaignConfig(seed=seed, days=6, popular_population=14,
                              unpopular_population=8,
                              session_duration=240.0, warmup=80.0)
    raise ValueError(f"unknown campaign profile {profile!r}")


def _series_digest(result) -> str:
    """Same formula as tests/test_campaign_goldens.py — keep in sync."""
    parts = []
    for popularity in (Popularity.POPULAR, Popularity.UNPOPULAR):
        for curve in ("CNC", "TELE", "Mason"):
            parts.append(",".join(f"{value:.9e}" for value
                                  in result.series(popularity, curve)))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def run_engine_bench(profile: str = "quick", seed: int = 7) -> dict:
    """One engine micro-benchmark run; returns its record dict."""
    config = engine_config(profile, seed)
    started = time.perf_counter()
    result = SessionScenario(config).run()
    wall = time.perf_counter() - started
    sim = result.deployment.sim
    udp = result.deployment.internet.udp
    counters = (sim.events_executed, udp.datagrams_sent,
                udp.datagrams_delivered, udp.datagrams_lost,
                udp.datagrams_dropped_uplink, udp.datagrams_dropped_offline,
                udp.datagrams_dropped_fault, udp.bytes_delivered)
    digest = hashlib.sha256(
        "|".join(str(value) for value in counters).encode()).hexdigest()
    return {
        "profile": profile,
        "seed": seed,
        "population": config.population,
        "sim_seconds": config.warmup + config.duration,
        "events": sim.events_executed,
        "datagrams_sent": udp.datagrams_sent,
        "datagrams_delivered": udp.datagrams_delivered,
        "wall_seconds": round(wall, 3),
        "events_per_sec": round(sim.events_executed / wall, 1),
        "peak_rss_bytes": _peak_rss_bytes(),
        "golden_digest": digest,
    }


def run_campaign_bench(profile: str = "quick", seed: int = 11,
                       jobs: int = 1) -> dict:
    """One campaign micro-benchmark run; returns its record dict."""
    config = campaign_config(profile, seed)
    metrics = MetricsRegistry()
    config = replace(config,
                     instrumentation=Instrumentation(metrics=metrics))
    started = time.perf_counter()
    result = run_campaign(config, jobs=jobs)
    wall = time.perf_counter() - started
    table = Figure6(result=result).render()
    table_digest = hashlib.sha256(table.encode()).hexdigest()
    events_counter = metrics.get("sim.events_executed")
    events = int(events_counter.value) if events_counter is not None else 0
    return {
        "profile": profile,
        "seed": seed,
        "days": config.days,
        "jobs": jobs,
        "events": events,
        "wall_seconds": round(wall, 3),
        "events_per_sec": round(events / wall, 1) if events else None,
        "peak_rss_bytes": _peak_rss_bytes(),
        "golden_digest": table_digest,
        "series_digest": _series_digest(result),
    }


def _load(path: Path) -> Optional[dict]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _merged(path: Path, benchmark: str, records: Dict[str, dict]) -> dict:
    """Existing file content with ``records`` profiles replaced."""
    existing = _load(path)
    profiles = dict(existing.get("profiles", {})) if existing else {}
    profiles.update(records)
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
        "command": "repro bench",
        "git_rev": _git_rev(),
        "profiles": profiles,
    }


def _check_drift(baseline: Optional[dict], records: Dict[str, dict],
                 name: str, out) -> List[str]:
    failures = []
    base_profiles = (baseline or {}).get("profiles", {})
    for profile, record in records.items():
        pinned = base_profiles.get(profile, {}).get("golden_digest")
        measured = record["golden_digest"]
        if pinned is None:
            failures.append(f"{name}:{profile}: no committed baseline digest")
        elif pinned != measured:
            failures.append(f"{name}:{profile}: golden digest drifted "
                            f"(baseline {pinned[:12]}… != "
                            f"measured {measured[:12]}…)")
        else:
            print(f"[bench] {name}:{profile} digest OK "
                  f"({measured[:12]}…)", file=out)
    return failures


def run_bench(out_dir: Path, quick: bool = False, check: bool = False,
              baseline_dir: Optional[Path] = None,
              only: Optional[str] = None,
              engine_seed: int = 7, campaign_seed: int = 11,
              out=None) -> int:
    """Run the bench suite; returns a process exit code."""
    out = out if out is not None else sys.stderr
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    baseline_dir = Path(baseline_dir) if baseline_dir is not None else None
    profiles = ("quick",) if quick else ("quick", "default")
    failures: List[str] = []

    if only in (None, "engine"):
        records = {}
        for profile in profiles:
            print(f"[bench] engine:{profile} (seed {engine_seed}) ...",
                  file=out)
            records[profile] = run_engine_bench(profile, engine_seed)
            print(f"[bench] engine:{profile} "
                  f"{records[profile]['events_per_sec']:.0f} events/sec "
                  f"in {records[profile]['wall_seconds']:.2f}s", file=out)
        path = out_dir / ENGINE_FILE
        if check:
            base = _load((baseline_dir or out_dir) / ENGINE_FILE)
            failures += _check_drift(base, records, "engine", out)
        path.write_text(json.dumps(_merged(path, "engine", records),
                                   indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"[bench] wrote {path}", file=out)

    if only in (None, "campaign"):
        records = {}
        for profile in profiles:
            print(f"[bench] campaign:{profile} (seed {campaign_seed}) ...",
                  file=out)
            records[profile] = run_campaign_bench(profile, campaign_seed)
            print(f"[bench] campaign:{profile} "
                  f"{records[profile]['wall_seconds']:.2f}s wall", file=out)
        path = out_dir / CAMPAIGN_FILE
        if check:
            base = _load((baseline_dir or out_dir) / CAMPAIGN_FILE)
            failures += _check_drift(base, records, "campaign", out)
        path.write_text(json.dumps(_merged(path, "campaign", records),
                                   indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"[bench] wrote {path}", file=out)

    for failure in failures:
        print(f"[bench] FAIL {failure}", file=out)
    return 1 if failures else 0
