"""Shared infrastructure for the per-figure experiment drivers.

The paper derives Figures 2/7/11/15 from one TELE-probe popular-channel
trace, Figures 3/8/12/16 from one TELE-probe unpopular trace, and so on:
four canonical viewing sessions feed fourteen figures and a table.  The
:class:`WorkloadBank` mirrors that: it runs each canonical session once
per (scale, seed) and memoises the result, so regenerating every figure
costs four simulations, not fourteen.

Scales let tests, benchmarks and full paper-shape runs share drivers:

* ``SMALL``  — minutes-long sessions, tiny population (CI-friendly),
* ``DEFAULT`` — half-hour sessions, 100+ peers (benchmark default),
* ``FULL``   — the paper's 2-hour sessions (slow; for final numbers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from ..streaming.video import Popularity
from ..workload.popularity import (popular_channel_mix,
                                   unpopular_channel_mix)
from ..workload.scenario import (MASON_PROBE, TELE_PROBE, ProbeSpec,
                                 ScenarioConfig, SessionResult,
                                 SessionScenario)


class Scale(enum.Enum):
    """How big/long the canonical sessions are."""

    SMALL = "small"
    DEFAULT = "default"
    FULL = "full"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ScaleParams:
    popular_population: int
    unpopular_population: int
    duration: float
    warmup: float


SCALE_PARAMS: Dict[Scale, ScaleParams] = {
    Scale.SMALL: ScaleParams(popular_population=40,
                             unpopular_population=16,
                             duration=420.0, warmup=150.0),
    Scale.DEFAULT: ScaleParams(popular_population=90,
                               unpopular_population=28,
                               duration=1200.0, warmup=200.0),
    Scale.FULL: ScaleParams(popular_population=150,
                            unpopular_population=40,
                            duration=7200.0, warmup=300.0),
}


@dataclass(frozen=True)
class WorkloadKey:
    """Identifies one canonical session."""

    probe_name: str  # "tele" or "mason"
    popularity: Popularity
    scale: Scale
    seed: int

    @property
    def label(self) -> str:
        return (f"{self.probe_name}-{self.popularity.value}"
                f"@{self.scale.value}#{self.seed}")


def _probe_for(name: str) -> ProbeSpec:
    probes = {"tele": TELE_PROBE, "mason": MASON_PROBE}
    try:
        return probes[name]
    except KeyError:
        raise ValueError(f"unknown probe {name!r}; expected one of "
                         f"{sorted(probes)}") from None


def build_config(key: WorkloadKey) -> ScenarioConfig:
    """Scenario configuration for one canonical session."""
    params = SCALE_PARAMS[key.scale]
    if key.popularity is Popularity.POPULAR:
        mix = popular_channel_mix()
        population = params.popular_population
    else:
        mix = unpopular_channel_mix()
        population = params.unpopular_population
    return ScenarioConfig(
        seed=key.seed,
        population=population,
        mix=mix,
        popularity=key.popularity,
        probes=(_probe_for(key.probe_name),),
        warmup=params.warmup,
        duration=params.duration,
    )


class WorkloadBank:
    """Runs and memoises the four canonical sessions.

    An optional :class:`repro.obs.Instrumentation` bundle is threaded
    into every session the bank simulates; because sessions are
    memoised, each one contributes to the bundle exactly once no matter
    how many figures it feeds.  An optional fault schedule is likewise
    armed onto every session (``repro run fig02 --faults script.json``):
    the figure then shows the session *under* those faults.
    """

    def __init__(self, instrumentation=None, faults=None) -> None:
        self._cache: Dict[WorkloadKey, SessionResult] = {}
        self.instrumentation = instrumentation
        self.faults = faults

    def session(self, probe_name: str, popularity: Popularity,
                scale: Scale = Scale.DEFAULT, seed: int = 7) -> SessionResult:
        key = WorkloadKey(probe_name=probe_name, popularity=popularity,
                          scale=scale, seed=seed)
        result = self._cache.get(key)
        if result is None:
            config = build_config(key)
            config.instrumentation = self.instrumentation
            config.faults = self.faults
            result = SessionScenario(config).run()
            self._cache[key] = result
            # One flows record per *simulated* session: memoised reuse
            # across figures must not double-count the traffic.
            writer = getattr(self.instrumentation, "flows", None)
            if writer is not None and result.flows is not None:
                writer.write_unit({"session": key.label},
                                  result.flows.snapshot_state())
        return result

    def tele_popular(self, scale: Scale = Scale.DEFAULT,
                     seed: int = 7) -> SessionResult:
        return self.session("tele", Popularity.POPULAR, scale, seed)

    def tele_unpopular(self, scale: Scale = Scale.DEFAULT,
                       seed: int = 7) -> SessionResult:
        return self.session("tele", Popularity.UNPOPULAR, scale, seed)

    def mason_popular(self, scale: Scale = Scale.DEFAULT,
                      seed: int = 7) -> SessionResult:
        return self.session("mason", Popularity.POPULAR, scale, seed)

    def mason_unpopular(self, scale: Scale = Scale.DEFAULT,
                        seed: int = 7) -> SessionResult:
        return self.session("mason", Popularity.UNPOPULAR, scale, seed)

    def clear(self) -> None:
        self._cache.clear()


#: Process-wide bank shared by the benchmark suite.
DEFAULT_BANK = WorkloadBank()
