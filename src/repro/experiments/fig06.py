"""Figure 6: traffic locality over the four-week campaign.

Two panels — popular and unpopular programs — each with one day-indexed
locality curve per probe ISP (CNC, TELE, Mason), averaged over the two
concurrent probes per ISP, exactly as the authors plotted their
2008-10-11 .. 2008-11-07 data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.report import format_table
from ..streaming.video import Popularity
from ..workload.campaign import CampaignConfig, CampaignResult, run_campaign

CURVES = ("CNC", "TELE", "Mason")


@dataclass
class Figure6:
    """The campaign result rendered as the paper's two panels."""

    result: CampaignResult

    def panel_rows(self, popularity: Popularity) -> List[List[object]]:
        days = (self.result.popular if popularity is Popularity.POPULAR
                else self.result.unpopular)
        rows = []
        for day in days:
            rows.append([day.day + 1]
                        + [f"{day.locality_by_isp.get(c, 0.0):.1f}"
                           for c in CURVES]
                        + [day.population])
        return rows

    def average_locality(self, popularity: Popularity,
                         curve: str) -> Optional[float]:
        series = self.result.series(popularity, curve)
        if not series:
            return None
        return sum(series) / len(series)

    def variability(self, popularity: Popularity, curve: str) -> float:
        """Max - min over the days (the paper's Mason curves swing)."""
        series = self.result.series(popularity, curve)
        if not series:
            return 0.0
        return max(series) - min(series)

    def render(self) -> str:
        lines = ["=== Figure 6: traffic locality over the campaign ==="]
        for popularity, label in ((Popularity.POPULAR, "(a) popular"),
                                  (Popularity.UNPOPULAR, "(b) unpopular")):
            lines.append("")
            lines.append(f"{label} program — locality % by day:")
            lines.append(format_table(
                ["day"] + list(CURVES) + ["population"],
                self.panel_rows(popularity)))
            for curve in CURVES:
                avg = self.average_locality(popularity, curve)
                swing = self.variability(popularity, curve)
                if avg is not None:
                    lines.append(f"  {curve}: mean {avg:.1f}%, "
                                 f"day-to-day swing {swing:.1f} points")
        return "\n".join(lines)


def figure6(config: Optional[CampaignConfig] = None,
            instrumentation=None) -> Figure6:
    """Run the campaign and wrap it as Figure 6.

    ``instrumentation`` (a :class:`repro.obs.Instrumentation`) is
    threaded into the campaign when the caller did not already set one
    on ``config``.
    """
    if instrumentation is not None:
        config = config if config is not None else CampaignConfig()
        if config.instrumentation is None:
            config.instrumentation = instrumentation
    return Figure6(result=run_campaign(config))
