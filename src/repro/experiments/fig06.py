"""Figure 6: traffic locality over the four-week campaign.

Two panels — popular and unpopular programs — each with one day-indexed
locality curve per probe ISP (CNC, TELE, Mason), averaged over the two
concurrent probes per ISP, exactly as the authors plotted their
2008-10-11 .. 2008-11-07 data.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.report import format_table
from ..streaming.video import Popularity
from ..workload.campaign import CampaignConfig, CampaignResult, run_campaign
from .base import Scale

CURVES = ("CNC", "TELE", "Mason")

#: Campaign shapes per scale.  DEFAULT is the paper's protocol (28 days,
#: CampaignConfig defaults); SMALL is the CI-friendly micro-campaign;
#: FULL restores the paper's 2-hour daily sessions.  The campaign keeps
#: its canonical seed (11) at every scale so runs stay comparable.
_CAMPAIGN_SCALES: Dict[Scale, dict] = {
    Scale.SMALL: dict(days=4, popular_population=14,
                      unpopular_population=8,
                      session_duration=150.0, warmup=90.0),
    Scale.DEFAULT: dict(),
    Scale.FULL: dict(popular_population=150, unpopular_population=40,
                     session_duration=7200.0, warmup=300.0),
}


def campaign_config(scale: Scale = Scale.DEFAULT) -> CampaignConfig:
    """The campaign configuration for one workload scale."""
    return CampaignConfig(**_CAMPAIGN_SCALES[scale])


@dataclass
class Figure6:
    """The campaign result rendered as the paper's two panels."""

    result: CampaignResult

    def panel_rows(self, popularity: Popularity) -> List[List[object]]:
        days = (self.result.popular if popularity is Popularity.POPULAR
                else self.result.unpopular)
        rows = []
        for day in days:
            rows.append([day.day + 1]
                        + [f"{day.locality_by_isp.get(c, 0.0):.1f}"
                           for c in CURVES]
                        + [day.population])
        return rows

    def average_locality(self, popularity: Popularity,
                         curve: str) -> Optional[float]:
        series = self.result.series(popularity, curve)
        if not series:
            return None
        return sum(series) / len(series)

    def variability(self, popularity: Popularity, curve: str) -> float:
        """Max - min over the days (the paper's Mason curves swing)."""
        series = self.result.series(popularity, curve)
        if not series:
            return 0.0
        return max(series) - min(series)

    def render(self) -> str:
        lines = ["=== Figure 6: traffic locality over the campaign ==="]
        for popularity, label in ((Popularity.POPULAR, "(a) popular"),
                                  (Popularity.UNPOPULAR, "(b) unpopular")):
            lines.append("")
            lines.append(f"{label} program — locality % by day:")
            lines.append(format_table(
                ["day"] + list(CURVES) + ["population"],
                self.panel_rows(popularity)))
            for curve in CURVES:
                avg = self.average_locality(popularity, curve)
                swing = self.variability(popularity, curve)
                if avg is not None:
                    lines.append(f"  {curve}: mean {avg:.1f}%, "
                                 f"day-to-day swing {swing:.1f} points")
        return "\n".join(lines)


def figure6(config: Optional[CampaignConfig] = None,
            instrumentation=None, jobs: int = 1,
            checkpoint=None) -> Figure6:
    """Run the campaign and wrap it as Figure 6.

    ``instrumentation`` (a :class:`repro.obs.Instrumentation`) is
    threaded into the campaign when the caller did not already set one
    on ``config`` — via a copy, so the caller's config object is never
    mutated and can be reused.  ``jobs`` fans the daily sessions out to
    worker processes; the figure is identical for every ``jobs`` value.
    ``checkpoint`` (a :class:`repro.checkpoint.CheckpointPolicy`) makes
    the campaign resumable; a resumed figure is byte-identical to an
    uninterrupted one (``docs/CHECKPOINT.md``).
    """
    if instrumentation is not None:
        config = config if config is not None else CampaignConfig()
        if config.instrumentation is None:
            config = dataclasses.replace(config,
                                         instrumentation=instrumentation)
    return Figure6(result=run_campaign(config, jobs=jobs,
                                       checkpoint=checkpoint))
