"""Experiment drivers (S11): one entry per paper table/figure + ablations."""

from .ablations import (AblationPoint, AblationResult, isp_aware_tracker,
                        latency_pressure, policy_comparison,
                        popularity_sweep, top_peer_caching)
from .base import (DEFAULT_BANK, SCALE_PARAMS, Scale, ScaleParams,
                   WorkloadBank, WorkloadKey, build_config)
from .contribution_figs import ContributionFigure, contribution_figure
from .fig06 import Figure6, campaign_config, figure6
from .locality_figs import LocalityFigure, locality_figure
from .registry import (ALL_EXPERIMENT_IDS, EXPERIMENT_DESCRIPTIONS,
                       run_experiment)
from .response_figs import (ResponseFigure, Table1, build_table1,
                            response_figure, table1_row)
from .rtt_figs import RttFigure, rtt_figure
from .scorecard import (PerfBlock, Scorecard, Statistic, append_trend,
                        build_scorecard, perf_from_artifacts)

__all__ = [
    "Scale", "ScaleParams", "SCALE_PARAMS", "WorkloadBank", "WorkloadKey",
    "DEFAULT_BANK", "build_config",
    "LocalityFigure", "locality_figure",
    "ResponseFigure", "response_figure", "Table1", "build_table1",
    "table1_row",
    "ContributionFigure", "contribution_figure",
    "RttFigure", "rtt_figure",
    "Figure6", "figure6", "campaign_config",
    "run_experiment", "ALL_EXPERIMENT_IDS", "EXPERIMENT_DESCRIPTIONS",
    "AblationResult", "AblationPoint", "policy_comparison",
    "latency_pressure", "popularity_sweep", "top_peer_caching",
    "isp_aware_tracker",
    "Scorecard", "Statistic", "PerfBlock", "build_scorecard",
    "append_trend", "perf_from_artifacts",
]
