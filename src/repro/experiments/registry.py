"""Experiment registry: one entry per paper table/figure.

``run_experiment("fig11")`` reproduces the corresponding result from the
shared :class:`WorkloadBank`; the four canonical sessions are simulated
lazily and reused across all the figures they feed, exactly as the
paper's figures share its four featured traces.
"""

from __future__ import annotations

from typing import Optional

from ..streaming.video import Popularity
from .base import DEFAULT_BANK, Scale, WorkloadBank
from .contribution_figs import contribution_figure
from .locality_figs import locality_figure
from .response_figs import build_table1, response_figure
from .rtt_figs import rtt_figure

#: (probe, popularity, paper caption) per figure family member.
_SESSIONS = {
    "tele-popular": ("tele", Popularity.POPULAR,
                     "a China-TELE node viewing a popular program"),
    "tele-unpopular": ("tele", Popularity.UNPOPULAR,
                       "a China-TELE node viewing an unpopular program"),
    "mason-popular": ("mason", Popularity.POPULAR,
                      "a USA-Mason node viewing a popular program"),
    "mason-unpopular": ("mason", Popularity.UNPOPULAR,
                        "a USA-Mason node viewing an unpopular program"),
}

_LOCALITY_FIGS = {
    "fig02": "tele-popular",
    "fig03": "tele-unpopular",
    "fig04": "mason-popular",
    "fig05": "mason-unpopular",
}
_RESPONSE_FIGS = {
    "fig07": "tele-popular",
    "fig08": "tele-unpopular",
    "fig09": "mason-popular",
    "fig10": "mason-unpopular",
}
_CONTRIBUTION_FIGS = {
    "fig11": "tele-popular",
    "fig12": "tele-unpopular",
    "fig13": "mason-popular",
    "fig14": "mason-unpopular",
}
_RTT_FIGS = {
    "fig15": "tele-popular",
    "fig16": "tele-unpopular",
    "fig17": "mason-popular",
    "fig18": "mason-unpopular",
}


def _build_descriptions() -> dict:
    families = (
        (_LOCALITY_FIGS, "ISP-level traffic-locality panels"),
        (_RESPONSE_FIGS, "peer-list response-time series"),
        (_CONTRIBUTION_FIGS, "per-neighbor connection/contribution ranks"),
        (_RTT_FIGS, "data requests vs neighbor RTT"),
    )
    descriptions = {}
    for figs, what in families:
        for fig_id, session_key in figs.items():
            descriptions[fig_id] = f"{what} — {_SESSIONS[session_key][2]}"
    descriptions["table1"] = ("top-10/top-30% request-concentration "
                              "summary over the four featured sessions")
    descriptions["fig06"] = ("traffic locality per day over the 28-day "
                             "campaign (slow: runs every daily session)")
    descriptions["chaos"] = ("fault-injection study: locality, continuity "
                             "and recovery time before/during/after each "
                             "injected fault (accepts --faults)")
    descriptions["resilience"] = ("adversarial-peer sweep: locality, "
                                  "continuity, startup and contribution "
                                  "shape per misbehaving-peer model vs a "
                                  "clean baseline (accepts --jobs, "
                                  "--checkpoint)")
    return descriptions


#: experiment id -> one-line description (shown by ``repro list``).
EXPERIMENT_DESCRIPTIONS = _build_descriptions()


def _session_for(bank: WorkloadBank, session_key: str, scale: Scale,
                 seed: int):
    probe, popularity, _caption = _SESSIONS[session_key]
    return bank.session(probe, popularity, scale, seed)


def run_experiment(experiment_id: str,
                   bank: Optional[WorkloadBank] = None,
                   scale: Scale = Scale.DEFAULT,
                   seed: int = 7,
                   instrumentation=None,
                   jobs: int = 1,
                   faults=None,
                   checkpoint=None):
    """Reproduce one table/figure; returns its result object.

    ``experiment_id`` is "fig02".."fig18", "table1", "fig06" (the
    campaign; noticeably slower) or "chaos" (the fault-injection
    study).  ``instrumentation`` threads an observability bundle into
    the simulated sessions; when a ``bank`` is supplied its own bundle
    wins for the session figures.  ``jobs`` fans parallelisable
    experiments (the fig06 campaign, the chaos session pair) out to
    that many worker processes with byte-identical results.  ``faults``
    is an optional :class:`repro.faults.FaultSchedule` armed onto the
    simulated sessions (chaos uses it as the injected storm; the
    session figures and fig06 then show behaviour *under* it).  fig06
    scales with ``scale`` but keeps the campaign's canonical seed (11)
    rather than ``seed``, so its reproduction stays pinned to the
    paper's protocol.  ``checkpoint`` (a
    :class:`repro.checkpoint.CheckpointPolicy`) makes the fig06
    campaign resumable; other experiments reject it.
    """
    if checkpoint is not None and experiment_id not in ("fig06",
                                                        "resilience"):
        raise ValueError(
            f"--checkpoint/--resume only apply to the fig06 campaign "
            f"and the resilience sweep, not {experiment_id!r}")
    if bank is None:
        bank = WorkloadBank(instrumentation=instrumentation,
                            faults=faults) \
            if instrumentation is not None or faults is not None \
            else DEFAULT_BANK
    if experiment_id in _LOCALITY_FIGS:
        key = _LOCALITY_FIGS[experiment_id]
        session = _session_for(bank, key, scale, seed)
        return locality_figure(session, experiment_id,
                               _SESSIONS[key][2])
    if experiment_id in _RESPONSE_FIGS:
        key = _RESPONSE_FIGS[experiment_id]
        session = _session_for(bank, key, scale, seed)
        return response_figure(session, experiment_id,
                               f"peer-list response times, "
                               f"{_SESSIONS[key][2]}")
    if experiment_id in _CONTRIBUTION_FIGS:
        key = _CONTRIBUTION_FIGS[experiment_id]
        session = _session_for(bank, key, scale, seed)
        return contribution_figure(session, experiment_id,
                                   f"connections and contributions, "
                                   f"{_SESSIONS[key][2]}")
    if experiment_id in _RTT_FIGS:
        key = _RTT_FIGS[experiment_id]
        session = _session_for(bank, key, scale, seed)
        return rtt_figure(session, experiment_id,
                          f"data requests vs RTT, {_SESSIONS[key][2]}")
    if experiment_id == "table1":
        return build_table1(
            _session_for(bank, "tele-popular", scale, seed),
            _session_for(bank, "tele-unpopular", scale, seed),
            _session_for(bank, "mason-popular", scale, seed),
            _session_for(bank, "mason-unpopular", scale, seed))
    if experiment_id == "fig06":
        from .fig06 import campaign_config, figure6
        config = campaign_config(scale)
        config.faults = faults
        return figure6(config=config,
                       instrumentation=instrumentation, jobs=jobs,
                       checkpoint=checkpoint)
    if experiment_id == "chaos":
        from .chaos import run_chaos
        return run_chaos(schedule=faults, scale=scale, seed=seed,
                         instrumentation=instrumentation, jobs=jobs)
    if experiment_id == "resilience":
        from .resilience import run_resilience
        return run_resilience(scale=scale, seed=seed,
                              instrumentation=instrumentation, jobs=jobs,
                              checkpoint=checkpoint)
    raise ValueError(f"unknown experiment id {experiment_id!r}")


ALL_EXPERIMENT_IDS = tuple(
    sorted(set(_LOCALITY_FIGS) | set(_RESPONSE_FIGS)
           | set(_CONTRIBUTION_FIGS) | set(_RTT_FIGS)
           | {"table1", "fig06", "chaos", "resilience"}))
