"""Run-fidelity scorecard (the ``repro report`` subcommand).

One table answering "how faithfully does this build reproduce the
paper?": every headline statistic the analysis layer computes for
Figures 2-5 (locality shares), 11-14 (contribution concentration and
stretched-exponential fits), 15-18 (log-log RTT correlations) and
Table 1 (data-response averages), each judged against a target range.

Two reference columns per statistic:

* ``paper`` — the number the paper reports, straight from
  :data:`repro.experiments.collect.PAPER_TARGETS`'s prose.
* ``target range`` — what *this simulator at this scale* is expected to
  produce.  Absolute magnitudes deviate from the paper for documented
  reasons (see the "Known deviations" section of ``EXPERIMENTS.md``:
  ~100-peer swarms cannot concentrate traffic as hard as PPLive's
  multi-thousand-peer channels), so the ranges encode the *shape*
  claims — which ISP wins, the sign of the correlation, which model
  fits — with generous margins, not the paper's point values.

The scorecard also carries an engine-perf block (events executed,
events/s, span counts) and serialises to markdown, HTML and a compact
JSON trend record appended to ``benchmarks/results/trend.jsonl`` so CI
accumulates a fidelity/perf trajectory across commits.
"""

from __future__ import annotations

import html as html_mod
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..analysis.response import ResponseGroup
from ..network.isp import ISPCategory
from ..obs import Instrumentation, MemorySpanSink
from .base import Scale, WorkloadBank
from .collect import PAPER_TARGETS
from .registry import run_experiment

#: Statistics judged "reproduced" when inside these ranges.  Bounds are
#: simulator-calibrated (small/default scale); the asserted claim is the
#: paper's *shape*, per the module docstring.
_PASS = "pass"
_DEVIATES = "deviates"
_NA = "n/a"


@dataclass
class Statistic:
    """One scored line of the fidelity table."""

    figure: str
    name: str
    value: Optional[float]
    #: Inclusive target interval for the reproduced value.
    target: Optional[Tuple[float, float]]
    #: The paper's reported number, where it quotes one.
    paper: Optional[float] = None
    unit: str = ""
    note: str = ""

    @property
    def status(self) -> str:
        if self.value is None:
            return _NA
        if self.target is None:
            return _PASS  # informational: no acceptance band
        low, high = self.target
        return _PASS if low <= self.value <= high else _DEVIATES

    def format_value(self) -> str:
        if self.value is None:
            return "—"
        return f"{self.value:.3f}{self.unit}"

    def format_target(self) -> str:
        if self.target is None:
            return "—"
        low, high = self.target
        return f"[{low:g}, {high:g}]{self.unit}"

    def format_paper(self) -> str:
        if self.paper is None:
            return "—"
        return f"{self.paper:g}{self.unit}"


@dataclass
class PerfBlock:
    """Engine performance numbers for the runs behind the scorecard."""

    events_executed: int = 0
    wall_seconds: float = 0.0
    events_per_sec: float = 0.0
    spans_recorded: int = 0
    metric_series: int = 0
    sessions: int = 0

    def to_record(self) -> dict:
        return {"events_executed": self.events_executed,
                "wall_seconds": round(self.wall_seconds, 3),
                "events_per_sec": round(self.events_per_sec, 1),
                "spans_recorded": self.spans_recorded,
                "metric_series": self.metric_series,
                "sessions": self.sessions}


@dataclass
class Scorecard:
    """The full fidelity report for one build/scale/seed."""

    scale: str
    seed: int
    statistics: List[Statistic] = field(default_factory=list)
    perf: PerfBlock = field(default_factory=PerfBlock)
    label: str = ""

    @property
    def passed(self) -> int:
        return sum(1 for s in self.statistics if s.status == _PASS)

    @property
    def scored(self) -> int:
        return sum(1 for s in self.statistics if s.status != _NA)

    # ------------------------------------------------------------------
    # Renderers
    # ------------------------------------------------------------------
    def render_markdown(self) -> str:
        lines = ["# Run-fidelity scorecard", ""]
        if self.label:
            lines += [f"_{self.label}_", ""]
        lines += [f"Scale `{self.scale}`, seed {self.seed} — "
                  f"**{self.passed}/{self.scored}** statistics inside "
                  "their target ranges.", ""]
        lines += ["| figure | statistic | measured | target range "
                  "| paper | status |",
                  "|---|---|---|---|---|---|"]
        for s in self.statistics:
            lines.append(f"| {s.figure} | {s.name} | {s.format_value()} "
                         f"| {s.format_target()} | {s.format_paper()} "
                         f"| {s.status} |")
        lines += ["", "## Paper context", ""]
        for figure in _ordered_figures(self.statistics):
            prose = PAPER_TARGETS.get(figure)
            if prose:
                lines.append(f"- **{figure}** — {prose}")
        lines += ["", "## Engine performance", ""]
        perf = self.perf.to_record()
        lines += [f"- {key.replace('_', ' ')}: {value}"
                  for key, value in perf.items()]
        lines.append("")
        return "\n".join(lines)

    def render_html(self) -> str:
        esc = html_mod.escape
        colors = {_PASS: "#2e7d32", _DEVIATES: "#c62828", _NA: "#757575"}
        rows = []
        for s in self.statistics:
            color = colors[s.status]
            rows.append(
                "<tr>"
                f"<td>{esc(s.figure)}</td><td>{esc(s.name)}</td>"
                f"<td>{esc(s.format_value())}</td>"
                f"<td>{esc(s.format_target())}</td>"
                f"<td>{esc(s.format_paper())}</td>"
                f"<td style='color:{color}'>{esc(s.status)}</td>"
                "</tr>")
        perf_items = "".join(
            f"<li>{esc(key.replace('_', ' '))}: {value}</li>"
            for key, value in self.perf.to_record().items())
        return (
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            "<title>Run-fidelity scorecard</title>"
            "<style>body{font-family:sans-serif;margin:2em}"
            "table{border-collapse:collapse}"
            "td,th{border:1px solid #ccc;padding:4px 10px}</style>"
            "</head><body>"
            "<h1>Run-fidelity scorecard</h1>"
            f"<p>{esc(self.label)}</p>"
            f"<p>Scale <code>{esc(self.scale)}</code>, seed {self.seed} "
            f"&mdash; <b>{self.passed}/{self.scored}</b> statistics "
            "inside their target ranges.</p>"
            "<table><tr><th>figure</th><th>statistic</th>"
            "<th>measured</th><th>target range</th><th>paper</th>"
            f"<th>status</th></tr>{''.join(rows)}</table>"
            f"<h2>Engine performance</h2><ul>{perf_items}</ul>"
            "</body></html>")

    # ------------------------------------------------------------------
    # Trend record
    # ------------------------------------------------------------------
    def trend_record(self) -> dict:
        """The compact JSON line appended to trend.jsonl."""
        return {
            "kind": "scorecard",
            "label": self.label,
            "scale": self.scale,
            "seed": self.seed,
            "passed": self.passed,
            "scored": self.scored,
            "statistics": {f"{s.figure}.{_slug(s.name)}":
                           (round(s.value, 6) if s.value is not None
                            else None)
                           for s in self.statistics},
            "perf": self.perf.to_record(),
        }


def _slug(name: str) -> str:
    return name.lower().replace(" ", "_").replace("%", "pct")


def _ordered_figures(statistics: List[Statistic]) -> List[str]:
    seen: List[str] = []
    for s in statistics:
        if s.figure not in seen:
            seen.append(s.figure)
    return seen


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
#: Target ranges per (figure, statistic), simulator-calibrated.
#: Locality/contribution shares are fractions in [0, 1].
_LOCALITY_TARGETS = {
    # (byte-locality range, returned-own-share range), paper byte share.
    "fig02": ((0.40, 1.00), (0.40, 1.00), 0.85),
    "fig03": ((0.25, 1.00), (0.15, 1.00), 0.55),
    "fig04": ((0.25, 1.00), (0.10, 1.00), 0.55),
    # Mason unpopular: Chinese peers dominate, own share must be LOW.
    "fig05": ((0.00, 0.40), (0.00, 0.60), None),
}
_CONTRIBUTION_TARGETS = {
    # top-10% byte share range, paper's value.
    "fig11": ((0.25, 1.00), 0.73),
    "fig12": ((0.25, 1.00), 0.67),
    "fig13": ((0.25, 1.00), 0.82),
    "fig14": ((0.25, 1.00), 0.77),
}
_SE_R2_TARGET = (0.85, 1.00)
_RTT_TARGETS = {
    # Negative correlation, with the paper's value.
    "fig15": ((-1.0, -0.05), -0.654),
    "fig16": ((-1.0, -0.05), -0.396),
    "fig17": ((-1.0, -0.05), -0.679),
    "fig18": ((-1.0, -0.05), -0.450),
}
#: Paper's Table 1 TELE-Popular row (TELE / CNC / OTHER seconds).
_TABLE1_PAPER = {"tele-popular": {ResponseGroup.TELE: 0.7889,
                                  ResponseGroup.CNC: 1.3155,
                                  ResponseGroup.OTHER: 0.7052}}


def build_scorecard(bank: Optional[WorkloadBank] = None,
                    scale: Scale = Scale.SMALL, seed: int = 7,
                    label: str = "",
                    instrumentation: Optional[Instrumentation] = None
                    ) -> Scorecard:
    """Run the four canonical sessions and score every statistic.

    All of Figures 2-5, 11-18 and Table 1 derive from the bank's four
    memoised sessions, so the whole scorecard costs four simulations.
    When no ``instrumentation`` is supplied, one with metrics, profiler
    and an in-memory span sink is created so the perf block is real.
    """
    obs = instrumentation
    if obs is None:
        obs = Instrumentation.full(spans=MemorySpanSink())
    if bank is None:
        bank = WorkloadBank(instrumentation=obs)

    card = Scorecard(scale=scale.value, seed=seed, label=label)
    stats = card.statistics

    for figure, (byte_t, returned_t, paper_bytes) in \
            sorted(_LOCALITY_TARGETS.items()):
        result = run_experiment(figure, bank=bank, scale=scale, seed=seed)
        stats.append(Statistic(
            figure, "byte locality (own-ISP share)",
            result.breakdown.locality, byte_t, paper=paper_bytes,
            note="fraction of downloaded bytes from the probe's ISP"))
        stats.append(Statistic(
            figure, "returned own-ISP share",
            result.returned_own_share, returned_t))

    for figure, (top10_t, paper_top10) in \
            sorted(_CONTRIBUTION_TARGETS.items()):
        result = run_experiment(figure, bank=bank, scale=scale, seed=seed)
        analysis = result.analysis
        stats.append(Statistic(
            figure, "top-10% neighbor byte share",
            analysis.top10_byte_share, top10_t, paper=paper_top10))
        se_r2 = analysis.se_fit.r_squared if analysis.se_fit else None
        zipf_r2 = (analysis.zipf_fit.r_squared
                   if analysis.zipf_fit else None)
        stats.append(Statistic(
            figure, "SE fit R^2", se_r2, _SE_R2_TARGET,
            note="stretched-exponential fit of request ranks"))
        better = None
        if se_r2 is not None and zipf_r2 is not None:
            better = 1.0 if se_r2 > zipf_r2 else 0.0
        stats.append(Statistic(
            figure, "SE beats Zipf", better, (1.0, 1.0),
            note="1 when the SE R^2 exceeds the Zipf R^2, as the paper "
                 "finds"))

    for figure, (corr_t, paper_corr) in sorted(_RTT_TARGETS.items()):
        result = run_experiment(figure, bank=bank, scale=scale, seed=seed)
        correlation = result.analysis.correlation
        stats.append(Statistic(
            figure, "log-log RTT correlation", correlation, corr_t,
            paper=paper_corr,
            note="corr(log #requests, log RTT); negative = nearest "
                 "peers used most"))

    table1 = run_experiment("table1", bank=bank, scale=scale, seed=seed)
    for row_label, averages in table1.rows.items():
        paper_row = _TABLE1_PAPER.get(row_label, {})
        for group in (ResponseGroup.TELE, ResponseGroup.CNC,
                      ResponseGroup.OTHER):
            stats.append(Statistic(
                "table1", f"{row_label} avg response ({group})",
                averages.get(group), (0.05, 5.0),
                paper=paper_row.get(group), unit="s"))

    obs.finalize()
    card.perf = _perf_block(obs)
    return card


def _perf_block(obs: Instrumentation) -> PerfBlock:
    perf = PerfBlock()
    profiler = obs.profiler
    if profiler is not None:
        perf.events_executed = profiler.total_events
        perf.wall_seconds = profiler.total_wall_seconds
        if perf.wall_seconds > 0:
            perf.events_per_sec = (perf.events_executed
                                   / perf.wall_seconds)
    perf.spans_recorded = obs.spans.spans_recorded
    perf.metric_series = len(obs.metrics)
    sessions = obs.metrics.counter("sim.sessions_run")
    perf.sessions = int(getattr(sessions, "value", 0) or 0)
    return perf


def append_trend(card: Scorecard, path: Path) -> dict:
    """Append the scorecard's trend record as one JSONL line."""
    record = card.trend_record()
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")
    return record


def perf_from_artifacts(metrics_path: Optional[str] = None,
                        spans_path: Optional[str] = None) -> PerfBlock:
    """Perf block reconstructed from a finished run's artifact files
    (``--metrics`` JSONL and ``--spans`` JSONL/Chrome trace), for
    ``repro report --metrics-in/--spans-in``."""
    from ..obs import read_metrics_jsonl
    from ..obs.spans import read_chrome_trace, read_spans_jsonl

    perf = PerfBlock()
    if metrics_path:
        records = read_metrics_jsonl(metrics_path)
        perf.metric_series = len(records)
        for record in records:
            name = record.get("name")
            if name == "sim.events_executed":
                perf.events_executed += int(record.get("value", 0))
            elif name == "sim.sessions_run":
                perf.sessions += int(record.get("value", 0))
            elif name == "sim.wall_seconds_total":
                perf.wall_seconds += float(record.get("value", 0.0))
        if perf.wall_seconds > 0:
            perf.events_per_sec = perf.events_executed / perf.wall_seconds
    if spans_path:
        if spans_path.endswith(".json"):
            events = read_chrome_trace(spans_path)
            perf.spans_recorded = sum(1 for e in events
                                      if e.get("ph") != "M")
        else:
            perf.spans_recorded = len(read_spans_jsonl(spans_path))
    return perf


__all__ = ["Statistic", "PerfBlock", "Scorecard", "build_scorecard",
           "append_trend", "perf_from_artifacts"]
