"""Figures 7-10 and Table 1: response-time analysis.

Figures 7-10 plot every peer-list response time along the session,
grouped by the replier's ISP group (TELE / CNC / OTHER), with group
averages in the captions.  Table 1 reports the average response time to
*data* requests for the four canonical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.report import format_seconds, format_table
from ..analysis.response import (DISPLAY_CLIP_SECONDS, ResponseSeries,
                                 data_response_series,
                                 peerlist_response_series)
from ..network.isp import ResponseGroup
from ..workload.scenario import SessionResult

GROUP_ORDER = (ResponseGroup.TELE, ResponseGroup.CNC, ResponseGroup.OTHER)


@dataclass
class ResponseFigure:
    """One of Figures 7-10."""

    figure_id: str
    title: str
    series: Dict[ResponseGroup, ResponseSeries]
    unanswered: int

    def average(self, group: ResponseGroup) -> Optional[float]:
        return self.series[group].average

    def render(self) -> str:
        lines: List[str] = [f"=== {self.figure_id}: {self.title} ==="]
        rows = []
        for group in GROUP_ORDER:
            series = self.series[group]
            clipped = series.clipped(DISPLAY_CLIP_SECONDS)
            rows.append([str(group), series.count,
                         format_seconds(series.average),
                         len(clipped)])
        lines.append(format_table(
            ["replier group", "replies", "avg resp (s)",
             f"plotted (<{DISPLAY_CLIP_SECONDS:.0f}s)"], rows))
        lines.append(f"  unanswered peer-list requests: {self.unanswered}")
        return "\n".join(lines)


def response_figure(result: SessionResult, figure_id: str,
                    title: str) -> ResponseFigure:
    """Build one of Figures 7-10 from a canonical session."""
    probe = result.probe()
    series = peerlist_response_series(probe.report.peer_lists,
                                      result.directory,
                                      result.infrastructure)
    return ResponseFigure(figure_id=figure_id, title=title, series=series,
                          unanswered=probe.report.unanswered_peer_lists)


@dataclass
class Table1:
    """Average response time (s) to data requests, four workloads."""

    #: row label -> {group: average seconds}
    rows: Dict[str, Dict[ResponseGroup, Optional[float]]]

    def render(self) -> str:
        lines = ["=== Table 1: average response time (s) to data "
                 "requests ==="]
        table_rows = []
        for label, averages in self.rows.items():
            table_rows.append(
                [label] + [format_seconds(averages.get(g))
                           for g in GROUP_ORDER])
        lines.append(format_table(
            ["workload"] + [f"{g} peers" for g in GROUP_ORDER],
            table_rows))
        return "\n".join(lines)


def table1_row(result: SessionResult) -> Dict[ResponseGroup,
                                              Optional[float]]:
    """One row of Table 1 from one canonical session."""
    probe = result.probe()
    series = data_response_series(probe.report.data, result.directory,
                                  result.infrastructure)
    return {group: s.average for group, s in series.items()}


def build_table1(tele_popular: SessionResult,
                 tele_unpopular: SessionResult,
                 mason_popular: SessionResult,
                 mason_unpopular: SessionResult) -> Table1:
    """Assemble Table 1 from the four canonical sessions."""
    return Table1(rows={
        "TELE-Popular": table1_row(tele_popular),
        "TELE-Unpopular": table1_row(tele_unpopular),
        "Mason-Popular": table1_row(mason_popular),
        "Mason-Unpopular": table1_row(mason_unpopular),
    })
