"""Ablation experiments (DESIGN.md A1-A4).

The paper *attributes* PPLive's locality to the decentralized,
latency-based, neighbor-referral selection strategy; these ablations test
that attribution by swapping exactly the selection policy and measuring
the resulting traffic locality of a TELE probe on the popular channel:

* A1 — neighbor referral vs BitTorrent-style tracker-only random,
* A2 — the latency race vs the same referral lists with the handshake
  race neutralised (uniform latency on Hello/Ack is not possible without
  changing physics, so A2 disables the latency-driven *replacement*
  pressure instead, isolating that component),
* A3 — the oracle baselines (biased neighbor selection, Ono, P4P),
* A4 — channel-popularity sweep: locality vs concurrent audience size.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..analysis.locality import traffic_locality
from ..analysis.report import format_table
from ..baselines.oracles import IspOracle, ProximityOracle
from ..baselines.strategies import (BiasedNeighborPolicy, OnoPolicy,
                                    P4PPolicy, TrackerOnlyRandomPolicy)
from ..parallel.jobs import Job, run_jobs
from ..streaming.video import Popularity
from ..workload.popularity import popular_channel_mix
from ..workload.scenario import (ScenarioConfig, SessionScenario,
                                 TELE_PROBE)


# Policy factories must be module-level (not lambdas) so ablation grid
# points stay picklable and can fan out to worker processes.
def _tracker_only_policy(dep):
    return TrackerOnlyRandomPolicy()


def _biased_policy(dep):
    return BiasedNeighborPolicy(IspOracle(dep.internet.directory))


def _ono_policy(dep):
    return OnoPolicy(ProximityOracle(dep.internet.latency,
                                     dep.internet.udp,
                                     dep.sim.random.stream("ono-oracle")))


def _p4p_policy(dep):
    return P4PPolicy(IspOracle(dep.internet.directory))


@dataclass
class AblationPoint:
    """One measured configuration."""

    label: str
    locality: float
    data_transactions: int
    probe_continuity: float


@dataclass
class AblationResult:
    ablation_id: str
    title: str
    points: List[AblationPoint]

    def locality_of(self, label: str) -> Optional[float]:
        for point in self.points:
            if point.label == label:
                return point.locality
        return None

    def render(self) -> str:
        lines = [f"=== {self.ablation_id}: {self.title} ==="]
        rows = [[p.label, f"{p.locality:.1%}", p.data_transactions,
                 f"{p.probe_continuity:.2f}"]
                for p in self.points]
        lines.append(format_table(
            ["configuration", "traffic locality", "data txns",
             "probe continuity"], rows))
        return "\n".join(lines)


def _measure(config: ScenarioConfig, label: str) -> AblationPoint:
    result = SessionScenario(config).run()
    probe = result.probe()
    category = result.directory.category_of(probe.address)
    locality = traffic_locality(probe.report.data, result.directory,
                                category, result.infrastructure)
    return AblationPoint(
        label=label,
        locality=locality,
        data_transactions=len(probe.report.data),
        probe_continuity=probe.peer.player.continuity_index
        if probe.peer.player is not None else 0.0)


def _measure_job(config: ScenarioConfig, label: str) -> AblationPoint:
    """Worker entry point: instrumentation stays with the parent."""
    return _measure(dataclasses.replace(config, instrumentation=None),
                    label)


def _measure_all(labelled: Sequence[Tuple[str, ScenarioConfig]],
                 jobs: int = 1) -> List[AblationPoint]:
    """Measure every (label, config) grid point, serial or fanned out.

    Points are independent simulations seeded by their own configs, so
    the output — always in input order — is identical for every
    ``jobs`` value.
    """
    if jobs <= 1:
        return [_measure(config, label) for label, config in labelled]
    merged = run_jobs([Job(key=label, fn=_measure_job,
                           args=(config, label))
                       for label, config in labelled], workers=jobs)
    return list(merged.values())


def _base_config(seed: int, population: int,
                 duration: float) -> ScenarioConfig:
    return ScenarioConfig(seed=seed, population=population,
                          mix=popular_channel_mix(),
                          popularity=Popularity.POPULAR,
                          probes=(TELE_PROBE,),
                          warmup=200.0, duration=duration)


# ----------------------------------------------------------------------
# A1 + A3: policy comparison
# ----------------------------------------------------------------------
def policy_comparison(seed: int = 7, population: int = 80,
                      duration: float = 900.0,
                      include_oracles: bool = True,
                      jobs: int = 1) -> AblationResult:
    """A1/A3: PPLive referral vs tracker-only vs oracle baselines."""
    config = _base_config(seed, population, duration)
    grid = [
        ("pplive-referral", config),
        ("tracker-only-random",
         dataclasses.replace(config, policy_factory=_tracker_only_policy)),
    ]
    if include_oracles:
        grid.extend([
            ("biased-neighbor",
             dataclasses.replace(config, policy_factory=_biased_policy)),
            ("ono",
             dataclasses.replace(config, policy_factory=_ono_policy)),
            ("p4p",
             dataclasses.replace(config, policy_factory=_p4p_policy)),
        ])
    return AblationResult(
        ablation_id="A1/A3",
        title="peer-selection policy vs ISP-level traffic locality",
        points=_measure_all(grid, jobs=jobs))


# ----------------------------------------------------------------------
# A2: latency-driven replacement pressure
# ----------------------------------------------------------------------
def latency_pressure(seed: int = 7, population: int = 80,
                     duration: float = 900.0,
                     jobs: int = 1) -> AblationResult:
    """A2: with vs without the latency-driven neighbor replacement."""
    config = _base_config(seed, population, duration)
    no_pressure_protocol = dataclasses.replace(
        config.protocol, neighbor_replace_probability=0.0)
    grid = [
        ("latency replacement on", config),
        ("latency replacement off",
         dataclasses.replace(config, protocol=no_pressure_protocol)),
    ]
    return AblationResult(
        ablation_id="A2",
        title="latency-driven neighbor replacement vs locality",
        points=_measure_all(grid, jobs=jobs))


# ----------------------------------------------------------------------
# A4: popularity sweep
# ----------------------------------------------------------------------
def popularity_sweep(seed: int = 7,
                     populations: tuple = (20, 40, 80, 140),
                     duration: float = 900.0,
                     jobs: int = 1) -> AblationResult:
    """A4: locality as a function of concurrent audience size."""
    grid = [(f"population={population}",
             _base_config(seed, population, duration))
            for population in populations]
    return AblationResult(
        ablation_id="A4",
        title="concurrent audience size vs traffic locality",
        points=_measure_all(grid, jobs=jobs))


# ----------------------------------------------------------------------
# A5: top-responder connection caching (paper Section 3.4 suggestion)
# ----------------------------------------------------------------------
def top_peer_caching(seed: int = 7, population: int = 80,
                     duration: float = 900.0,
                     pin_fraction: float = 0.10,
                     jobs: int = 1) -> AblationResult:
    """A5: does pinning the top 10% of responders help, as the paper
    speculates ("it might be worth caching these top 10% of
    neighbors")?"""
    config = _base_config(seed, population, duration)
    pinned_protocol = dataclasses.replace(
        config.protocol, pin_top_responders=pin_fraction)
    grid = [
        ("no pinning", config),
        (f"pin top {pin_fraction:.0%} responders",
         dataclasses.replace(config, protocol=pinned_protocol)),
    ]
    return AblationResult(
        ablation_id="A5",
        title="top-responder connection caching (paper Section 3.4)",
        points=_measure_all(grid, jobs=jobs))


# ----------------------------------------------------------------------
# A6: ISP-aware tracker (the paper's reference [28] design)
# ----------------------------------------------------------------------
def isp_aware_tracker(seed: int = 7, population: int = 80,
                      duration: float = 900.0,
                      jobs: int = 1) -> AblationResult:
    """A6: tracker-side ISP awareness vs PPLive's plain trackers.

    Both variants use the native referral policy; only the tracker
    changes — isolating how much infrastructure-side topology knowledge
    adds on top of the emergent client-side locality.
    """
    config = _base_config(seed, population, duration)
    grid = [
        ("random tracker (PPLive)", config),
        ("isp-aware tracker [28]",
         dataclasses.replace(config, isp_aware_trackers=True)),
    ]
    return AblationResult(
        ablation_id="A6",
        title="tracker-side ISP awareness vs emergent locality",
        points=_measure_all(grid, jobs=jobs))
