"""Figures 15-18: data requests vs RTT per connected peer.

Peers are ranked by the number of data requests the probe sent them; the
per-peer RTT estimate is the minimum observed application-level response
time.  The paper reports the correlation coefficient between
log(#requests) and log(RTT) (negative: the busiest peers are the
nearest) and a least-squares fit of log(RTT) against rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.report import format_table
from ..analysis.rtt import RttAnalysis, analyze_requests_vs_rtt
from ..workload.scenario import SessionResult


@dataclass
class RttFigure:
    """One of Figures 15-18."""

    figure_id: str
    title: str
    analysis: RttAnalysis

    @property
    def correlation(self) -> float:
        return (self.analysis.correlation
                if self.analysis.correlation is not None else 0.0)

    def render(self) -> str:
        a = self.analysis
        lines: List[str] = [f"=== {self.figure_id}: {self.title} ==="]
        lines.append(f"  connected peers ranked by #requests: {len(a.peers)}")
        if a.correlation is not None:
            lines.append(f"  correlation coefficient "
                         f"log(#requests) vs log(RTT): {a.correlation:.3f}")
        if a.rtt_trend is not None:
            lines.append(f"  log(RTT) vs rank least-squares slope: "
                         f"{a.rtt_trend.slope:.5f} "
                         f"(R^2 = {a.rtt_trend.r_squared:.3f})")
        top = min(10, len(a.peers))
        rows = [[rank + 1, a.peers[rank], a.request_counts[rank],
                 f"{a.rtts[rank]:.4f}"]
                for rank in range(top)]
        lines.append(format_table(
            ["rank", "peer", "#requests", "RTT est (s)"], rows))
        return "\n".join(lines)


def rtt_figure(result: SessionResult, figure_id: str,
               title: str) -> RttFigure:
    """Build one of Figures 15-18 from a canonical session."""
    probe = result.probe()
    analysis = analyze_requests_vs_rtt(probe.report.data,
                                       result.infrastructure)
    return RttFigure(figure_id=figure_id, title=title, analysis=analysis)
