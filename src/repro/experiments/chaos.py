"""Chaos experiment: fault injection with recovery measurement.

``run_chaos`` simulates the canonical TELE-probe popular-program session
twice from the same seed — once clean, once with a
:class:`~repro.faults.FaultSchedule` armed — and samples both runs with
the same windowed probes: playback continuity per bin, intra-ISP traffic
share per bin (the paper's locality metric, computed from the probe's
matched data transactions by request time), startup delay of viewers
that began playback in the bin, and audience size.

For every fault in the schedule the report compares a *before*, *during*
and *after* window against the clean baseline's identical windows, and
measures **recovery time**: how long after the fault window ends until
the faulted run's continuity and locality are back within tolerance of
the baseline, bin by bin.  This is the acceptance check for the
protocol's self-healing paths (tracker failover, automatic
re-bootstrap, neighbor-table refill after blackouts).

Determinism: both sessions run as :mod:`repro.parallel` jobs with no
worker-side instrumentation, and every chaos-level metric/span/trace is
emitted by the parent *after* the deterministic merge — so artifacts are
byte-identical for every ``--jobs`` value (``tests/test_chaos.py`` pins
this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.locality import traffic_locality
from ..analysis.report import format_table
from ..faults import (FaultSchedule, FlashCrowd, LinkDegradation,
                      PeerBlackout, ServerOutage)
from ..obs import INFO, Instrumentation
from ..obs import resolve as resolve_obs
from ..parallel.jobs import Job, run_jobs
from ..workload.popularity import popular_channel_mix
from ..workload.scenario import TELE_PROBE, ScenarioConfig, SessionScenario
from .base import SCALE_PARAMS, Scale

#: Continuity must return to within this of the baseline to count as
#: recovered (absolute continuity-index difference; a single probe's
#: per-bin continuity is inherently volatile at small scales).
CONTINUITY_TOLERANCE = 0.15
#: Intra-ISP byte share must return to within this of the baseline
#: (absolute share difference; locality is noisier than continuity).
LOCALITY_TOLERANCE = 0.25


def demo_schedule(warmup: float, duration: float) -> FaultSchedule:
    """The default chaos storm, scaled to the session's clock.

    One fault per class, ordered mild-to-harsh and spaced so every
    fault keeps a clean recovery gap before the next one begins: a
    full tracker outage (exercises failover, suspect marking and
    automatic re-bootstrap), a flash crowd, an ISP blackout
    (correlated neighbor loss), and congestion on the TELE<->CNC
    peering link (the paper's villain path) with the longest tail.
    """
    def at(fraction: float) -> float:
        return round(warmup + fraction * duration, 3)

    return FaultSchedule(events=(
        ServerOutage(target="trackers", start=at(0.08),
                     duration=round(0.18 * duration, 3),
                     label="tracker-outage"),
        FlashCrowd(start=at(0.36), duration=round(0.08 * duration, 3),
                   arrivals=8, label="flash-crowd"),
        PeerBlackout(isp_name="ChinaNetcom", start=at(0.50), fraction=0.4,
                     label="cnc-blackout"),
        LinkDegradation(pair_class="tele_cnc_peering", start=at(0.62),
                        duration=round(0.13 * duration, 3),
                        extra_loss=0.15, latency_multiplier=2.5,
                        bandwidth_multiplier=0.4,
                        label="peering-congestion"),
    ))


@dataclass(frozen=True)
class ChaosParams:
    """Everything one chaos session job needs (picklable)."""

    seed: int
    population: int
    warmup: float
    duration: float
    bin_seconds: float

    @property
    def end_time(self) -> float:
        return self.warmup + self.duration


def chaos_params(scale: Scale = Scale.DEFAULT, seed: int = 7,
                 bin_seconds: Optional[float] = None) -> ChaosParams:
    params = SCALE_PARAMS[scale]
    if bin_seconds is None:
        bin_seconds = max(15.0, params.duration / 28.0)
    return ChaosParams(seed=seed, population=params.popular_population,
                       warmup=params.warmup, duration=params.duration,
                       bin_seconds=bin_seconds)


@dataclass(frozen=True)
class BinSample:
    """One sampling bin of one run; ``time`` is the bin's end."""

    time: float
    #: Probe continuity over the bin (None before playback produced
    #: any deadline in the bin).
    continuity: Optional[float]
    #: Intra-ISP share of the probe's downloaded bytes requested in the
    #: bin (None when the bin moved no data).
    locality: Optional[float]
    #: Mean startup delay of viewers whose playback began in the bin.
    startup_mean: Optional[float]
    startup_count: int
    #: Concurrent audience at the bin's end.
    viewers: int


@dataclass(frozen=True)
class ChaosRun:
    """One session's chaos measurements (baseline or faulted)."""

    bins: Tuple[BinSample, ...]
    overall_continuity: float
    overall_locality: float
    probe_startup_delay: Optional[float]
    #: Automatic bootstrap re-requests across probe + population —
    #: direct evidence the tracker-outage recovery path fired.
    total_rebootstraps: int
    total_crashed: int
    faults_begun: int
    faults_ended: int

    def bins_between(self, start: float, end: float) -> List[BinSample]:
        return [b for b in self.bins if start < b.time <= end + 1e-9]


def _bin_locality(transactions, directory, own_category, infrastructure,
                  start: float, end: float) -> Optional[float]:
    window = [tx for tx in transactions
              if start < tx.request_time <= end]
    if not window:
        return None
    total = sum(tx.payload_bytes for tx in window)
    if total == 0:
        return None
    return traffic_locality(window, directory, own_category,
                            infrastructure)


def _chaos_session_job(params: ChaosParams,
                       schedule: Optional[FaultSchedule]) -> ChaosRun:
    """Worker entry point: one sampled session, clean or faulted."""
    raw: List[dict] = []
    state = {"last": None}

    def hook(sim, deployment, manager, probe_peers) -> None:
        def tick() -> None:
            now = sim.now
            met = missed = 0
            for name in sorted(probe_peers):
                player = probe_peers[name].player
                if player is not None:
                    met += player.deadlines_met
                    missed += player.deadlines_missed
            prev = state["last"]
            window_start = prev if prev is not None \
                else now - params.bin_seconds
            delays: List[float] = []
            viewers = list(manager.active) \
                + [probe_peers[n] for n in sorted(probe_peers)]
            for viewer in viewers:
                player = getattr(viewer, "player", None)
                if (player is not None
                        and player.startup_delay is not None
                        and window_start < player.playout_started_at
                        <= now):
                    delays.append(player.startup_delay)
            raw.append({"time": now, "met": met, "missed": missed,
                        "delays_sum": sum(delays),
                        "delays_n": len(delays),
                        "viewers": manager.active_count})
            state["last"] = now

        sim.every(params.bin_seconds, tick, label="chaos-bin")

    config = ScenarioConfig(
        seed=params.seed,
        population=params.population,
        mix=popular_channel_mix(),
        probes=(TELE_PROBE,),
        warmup=params.warmup,
        duration=params.duration,
        faults=schedule,
        run_hook=hook,
    )
    result = SessionScenario(config).run()

    probe = result.probe()
    directory = result.directory
    own_category = directory.category_of(probe.address)
    infrastructure = result.infrastructure
    transactions = probe.report.data

    bins: List[BinSample] = []
    prev_met = prev_missed = 0
    prev_time = 0.0
    for sample in raw:
        dmet = sample["met"] - prev_met
        dmissed = sample["missed"] - prev_missed
        prev_met, prev_missed = sample["met"], sample["missed"]
        continuity = dmet / (dmet + dmissed) if dmet + dmissed else None
        locality = _bin_locality(transactions, directory, own_category,
                                 infrastructure, prev_time,
                                 sample["time"])
        startup_mean = (sample["delays_sum"] / sample["delays_n"]
                        if sample["delays_n"] else None)
        bins.append(BinSample(time=sample["time"], continuity=continuity,
                              locality=locality,
                              startup_mean=startup_mean,
                              startup_count=sample["delays_n"],
                              viewers=sample["viewers"]))
        prev_time = sample["time"]

    player = probe.peer.player
    overall_continuity = player.continuity_index if player is not None \
        else 0.0
    startup = player.startup_delay if player is not None else None
    rebootstraps = probe.peer.rebootstraps \
        + sum(getattr(v, "rebootstraps", 0)
              for v in result.population.active)
    injector = result.injector
    return ChaosRun(
        bins=tuple(bins),
        overall_continuity=overall_continuity,
        overall_locality=traffic_locality(transactions, directory,
                                          own_category, infrastructure),
        probe_startup_delay=startup,
        total_rebootstraps=rebootstraps,
        total_crashed=result.population.total_crashed,
        faults_begun=injector.faults_begun if injector else 0,
        faults_ended=injector.faults_ended if injector else 0,
    )


# ----------------------------------------------------------------------
# Windows and reports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowStats:
    """Aggregated measurements over one comparison window."""

    continuity: Optional[float]
    locality: Optional[float]
    startup_mean: Optional[float]
    viewers_mean: Optional[float]


def window_stats(run: ChaosRun, start: float, end: float) -> WindowStats:
    bins = run.bins_between(start, end)
    if not bins:
        return WindowStats(None, None, None, None)

    def mean(values: List[float]) -> Optional[float]:
        return sum(values) / len(values) if values else None

    return WindowStats(
        continuity=mean([b.continuity for b in bins
                         if b.continuity is not None]),
        locality=mean([b.locality for b in bins
                       if b.locality is not None]),
        startup_mean=mean([b.startup_mean for b in bins
                           if b.startup_mean is not None]),
        viewers_mean=mean([float(b.viewers) for b in bins]),
    )


@dataclass(frozen=True)
class FaultReport:
    """Before/during/after comparison for one injected fault."""

    name: str
    kind: str
    start: float
    end: float
    before: WindowStats
    during: WindowStats
    after: WindowStats
    baseline_after: WindowStats
    #: Seconds after the fault window until the faulted run's continuity
    #: and locality are both back within tolerance of the baseline's
    #: same-time bins; None when that never happens before the run ends.
    recovery_time: Optional[float]

    @property
    def recovered(self) -> bool:
        return self.recovery_time is not None


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _recovery_time(faulted: ChaosRun, baseline: ChaosRun,
                   fault_end: float, horizon: float) -> Optional[float]:
    """First post-fault instant with both metrics back near baseline.

    The comparison is *cumulative from the fault's end*: at each bin
    boundary the faulted run's mean continuity/locality since the
    fault ended is checked against the baseline's mean over the exact
    same bins.  Averaging the growing tail damps single-bin noise (one
    probe's 15-s continuity swings wildly even in a clean run) while
    still converging to the honest answer: a run that stays degraded
    never passes.
    """
    tail = [b for b in faulted.bins
            if fault_end < b.time <= horizon + 1e-9]
    base_by_time = {b.time: b for b in baseline.bins}
    for index in range(len(tail)):
        window = tail[:index + 1]
        reference = [base_by_time[b.time] for b in window
                     if b.time in base_by_time]
        f_cont = _mean([b.continuity for b in window
                        if b.continuity is not None])
        b_cont = _mean([b.continuity for b in reference
                        if b.continuity is not None])
        f_loc = _mean([b.locality for b in window
                       if b.locality is not None])
        b_loc = _mean([b.locality for b in reference
                       if b.locality is not None])
        if b_cont is not None and (
                f_cont is None
                or f_cont < b_cont - CONTINUITY_TOLERANCE):
            continue
        if (b_loc is not None and f_loc is not None
                and f_loc < b_loc - LOCALITY_TOLERANCE):
            continue
        return round(window[-1].time - fault_end, 3)
    return None


def build_reports(schedule: FaultSchedule, baseline: ChaosRun,
                  faulted: ChaosRun, params: ChaosParams
                  ) -> List[FaultReport]:
    reports: List[FaultReport] = []
    starts = sorted(event.start for event in schedule.events)
    for index, event in enumerate(schedule.events):
        name = schedule.name_of(index)
        window = max(event.end - event.start, 4 * params.bin_seconds)
        # The after-window stops at the next fault's start so one
        # fault's recovery is never graded under the next one's damage.
        later = [s for s in starts if s > event.end + 1e-9]
        horizon = min(event.end + window,
                      later[0] if later else params.end_time,
                      params.end_time)
        reports.append(FaultReport(
            name=name, kind=event.KIND,
            start=event.start, end=event.end,
            before=window_stats(faulted, event.start - window,
                                event.start),
            during=window_stats(faulted, event.start,
                                max(event.end, event.start
                                    + params.bin_seconds)),
            after=window_stats(faulted, event.end, horizon),
            baseline_after=window_stats(baseline, event.end, horizon),
            recovery_time=_recovery_time(faulted, baseline, event.end,
                                         horizon),
        ))
    return reports


@dataclass
class ChaosResult:
    """Everything ``repro run chaos`` produced."""

    schedule: FaultSchedule
    params: ChaosParams
    baseline: ChaosRun
    faulted: ChaosRun
    reports: List[FaultReport]

    @property
    def all_recovered(self) -> bool:
        return all(report.recovered for report in self.reports)

    def render(self) -> str:
        def pct(value: Optional[float]) -> str:
            return "-" if value is None else f"{100.0 * value:.1f}%"

        def seconds(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:.0f}s"

        rows = []
        for report in self.reports:
            rows.append([
                report.name, report.kind,
                f"{report.start:.0f}-{report.end:.0f}s",
                pct(report.before.continuity),
                pct(report.during.continuity),
                pct(report.after.continuity),
                pct(report.baseline_after.continuity),
                pct(report.after.locality),
                pct(report.baseline_after.locality),
                seconds(report.recovery_time),
            ])
        table = format_table(
            ["fault", "kind", "window", "cont<", "cont=", "cont>",
             "base>", "loc>", "base-loc>", "recovery"],
            rows)
        lines = [
            "chaos: fault injection with recovery measurement",
            f"  seed={self.params.seed} population="
            f"{self.params.population} "
            f"window={self.params.warmup:.0f}+{self.params.duration:.0f}s "
            f"bin={self.params.bin_seconds:.0f}s",
            f"  baseline: continuity={pct(self.baseline.overall_continuity)}"
            f" locality={pct(self.baseline.overall_locality)}",
            f"  faulted:  continuity={pct(self.faulted.overall_continuity)}"
            f" locality={pct(self.faulted.overall_locality)}"
            f" rebootstraps={self.faulted.total_rebootstraps}"
            f" crashed={self.faulted.total_crashed}",
            f"  faults: {self.faulted.faults_begun} injected, "
            f"{self.faulted.faults_ended} ended, "
            f"{sum(1 for r in self.reports if r.recovered)}"
            f"/{len(self.reports)} recovered",
            "",
            table,
            "",
            "  cont</=/> = faulted continuity before/during/after the",
            "  fault window; base> = clean-run continuity in the same",
            "  after-window; loc> likewise for intra-ISP byte share.",
            "  recovery = seconds after the fault until both metrics",
            "  are back within tolerance of the baseline, bin by bin.",
        ]
        return "\n".join(lines)


def _emit_chaos(obs: Instrumentation, result: ChaosResult) -> None:
    """Parent-side observability: deterministic regardless of --jobs."""
    if not obs.enabled:
        return
    metrics = obs.metrics
    metrics.gauge("chaos.continuity_baseline").set(
        round(result.baseline.overall_continuity, 6))
    metrics.gauge("chaos.continuity_faulted").set(
        round(result.faulted.overall_continuity, 6))
    metrics.gauge("chaos.locality_baseline").set(
        round(result.baseline.overall_locality, 6))
    metrics.gauge("chaos.locality_faulted").set(
        round(result.faulted.overall_locality, 6))
    metrics.gauge("chaos.rebootstraps").set(
        result.faulted.total_rebootstraps)
    for report in result.reports:
        tags = {"fault": report.name, "kind": report.kind}
        metrics.counter("chaos.faults", tags).inc()
        if report.recovery_time is not None:
            metrics.counter("chaos.faults_recovered", tags).inc()
            metrics.gauge("chaos.recovery_seconds", tags).set(
                report.recovery_time)
    if obs.trace.enabled_for(INFO):
        obs.trace.emit(0.0, INFO, "chaos_report",
                       faults=len(result.reports),
                       recovered=sum(1 for r in result.reports
                                     if r.recovered),
                       rebootstraps=result.faulted.total_rebootstraps)
    if obs.spans.enabled:
        for report in result.reports:
            if report.end > report.start:
                span = obs.spans.start_span(
                    f"fault:{report.kind}", "chaos", report.start,
                    actor="chaos", fault=report.name)
                span.finish(report.end, recovered=report.recovered,
                            recovery_seconds=report.recovery_time)
            else:
                obs.spans.instant(
                    f"fault:{report.kind}", "chaos", report.start,
                    actor="chaos", fault=report.name,
                    recovered=report.recovered)


def run_chaos(schedule: Optional[FaultSchedule] = None,
              scale: Scale = Scale.DEFAULT, seed: int = 7,
              instrumentation: Optional[Instrumentation] = None,
              jobs: int = 1,
              bin_seconds: Optional[float] = None) -> ChaosResult:
    """Run the chaos experiment; byte-identical for every ``jobs``.

    The baseline and faulted sessions are independent jobs; with
    ``jobs >= 2`` they run in parallel worker processes.  All
    instrumentation is parent-side (see module docstring).
    """
    params = chaos_params(scale, seed, bin_seconds)
    if schedule is None:
        schedule = demo_schedule(params.warmup, params.duration)
    job_list = [
        Job(key="baseline", fn=_chaos_session_job, args=(params, None)),
        Job(key="faulted", fn=_chaos_session_job, args=(params, schedule)),
    ]
    merged = run_jobs(job_list, workers=jobs, obs=None)
    baseline, faulted = merged["baseline"], merged["faulted"]
    reports = build_reports(schedule, baseline, faulted, params)
    result = ChaosResult(schedule=schedule, params=params,
                         baseline=baseline, faulted=faulted,
                         reports=reports)
    _emit_chaos(resolve_obs(instrumentation), result)
    return result
