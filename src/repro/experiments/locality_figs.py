"""Figures 2-5: ISP-level locality panels for one probe session.

Each figure has three panels:

(a) total returned peer addresses per ISP (with duplicates),
(b) returned addresses split by replier bucket (CNC_p, CNC_s, ...),
(c) data transmissions and downloaded bytes per ISP.

The driver renders the same rows the paper plots, plus the headline
percentages quoted in its prose (share of own-ISP entries, transmission
and byte locality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.locality import (CATEGORY_ORDER, LocalityBreakdown,
                                 REPLIER_BUCKETS, locality_breakdown,
                                 own_isp_share_of_replies)
from ..analysis.report import format_table, percentage
from ..workload.scenario import SessionResult


@dataclass
class LocalityFigure:
    """One of Figures 2-5, computed from a probe trace."""

    figure_id: str
    title: str
    breakdown: LocalityBreakdown
    own_isp_reply_shares: dict

    @property
    def returned_own_share(self) -> float:
        """Fraction of returned addresses in the probe's own ISP."""
        total = self.breakdown.returned_total
        if total == 0:
            return 0.0
        own = self.breakdown.returned_counts.get(
            self.breakdown.probe_category, 0)
        return own / total

    @property
    def transmissions_own_share(self) -> float:
        total = sum(self.breakdown.transmissions.values())
        if total == 0:
            return 0.0
        return self.breakdown.transmissions.get(
            self.breakdown.probe_category, 0) / total

    def render(self) -> str:
        b = self.breakdown
        lines: List[str] = [
            f"=== {self.figure_id}: {self.title} ===",
            f"probe {b.probe} ({b.probe_category})",
            "",
            "(a) returned peer addresses by ISP (with duplicates):",
        ]
        rows = [[str(c), b.returned_counts.get(c, 0),
                 percentage(b.returned_counts.get(c, 0), b.returned_total)]
                for c in CATEGORY_ORDER]
        lines.append(format_table(["ISP", "addresses", "share"], rows))
        lines.append(f"  own-ISP share of returned addresses: "
                     f"{self.returned_own_share:.1%}")
        lines.append("")
        lines.append("(b) returned addresses by replier bucket:")
        rows = []
        for bucket in REPLIER_BUCKETS:
            counts = b.by_source.get(bucket, {})
            row = [bucket] + [counts.get(c, 0) for c in CATEGORY_ORDER]
            rows.append(row)
        lines.append(format_table(
            ["replier"] + [str(c) for c in CATEGORY_ORDER], rows))
        for bucket, share in sorted(self.own_isp_reply_shares.items()):
            lines.append(f"  {bucket}: {share:.1%} of entries in the "
                         f"replier's own ISP")
        lines.append("")
        lines.append("(c) data transmissions / downloaded bytes by ISP:")
        tx_total = sum(b.transmissions.values())
        rows = [[str(c), b.transmissions.get(c, 0),
                 percentage(b.transmissions.get(c, 0), tx_total),
                 b.bytes.get(c, 0),
                 percentage(b.bytes.get(c, 0), b.bytes_total)]
                for c in CATEGORY_ORDER]
        lines.append(format_table(
            ["ISP", "transmissions", "tx share", "bytes", "byte share"],
            rows))
        lines.append(f"  traffic locality (own-ISP byte share): "
                     f"{b.locality:.1%}")
        lines.append(f"  unique peers on returned lists: {b.unique_listed}")
        return "\n".join(lines)


def locality_figure(result: SessionResult, figure_id: str,
                    title: str) -> LocalityFigure:
    """Build one of Figures 2-5 from a canonical session."""
    probe = result.probe()
    breakdown = locality_breakdown(probe.trace, probe.report.data,
                                   result.directory, result.infrastructure)
    shares = own_isp_share_of_replies(probe.trace, result.directory,
                                      result.infrastructure)
    return LocalityFigure(figure_id=figure_id, title=title,
                          breakdown=breakdown,
                          own_isp_reply_shares=shares)
