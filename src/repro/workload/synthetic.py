"""Synthetic P2P-streaming workload generation.

The paper closes its introduction with: "our workload characterization
also provides a basis to generate practical P2P streaming workloads for
simulation based studies."  This module is that basis, made executable:

1. fit a :class:`SyntheticWorkloadModel` to a measured (or simulated)
   probe session — the stretched-exponential request rank law, the
   RTT-vs-rank trend, the ISP mix of connected peers, and the
   byte/transaction geometry;
2. ``generate()`` arbitrarily many statistically similar sessions as
   plain :class:`DataTransaction` lists, directly consumable by every
   analyzer in :mod:`repro.analysis` — no protocol simulation needed.

The generated workloads preserve the properties the paper reports:
stretched-exponential per-peer request counts (not Zipf), top-10 %
concentration, and the negative log-log correlation between a peer's
request count and its RTT.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..capture.matching import DataTransaction
from ..network.isp import ISPCategory
from ..stats.correlation import log_linear_fit
from ..stats.fitting import LinearFit
from ..stats.se import StretchedExponentialFit, fit_stretched_exponential


@dataclass
class SyntheticWorkloadModel:
    """A fitted statistical description of one probe session."""

    #: Stretched-exponential law of per-peer request counts.
    se_fit: StretchedExponentialFit
    #: log(RTT) vs rank trend (slope/intercept in log space).
    rtt_trend: LinearFit
    #: Residual sigma of log(RTT) around the trend.
    rtt_sigma: float
    #: ISP category shares of connected peers (sums to 1).
    isp_shares: Dict[ISPCategory, float]
    #: Number of connected peers in the fitted session.
    n_peers: int
    #: Mean payload bytes per transaction.
    bytes_per_transaction: float
    #: Session duration in seconds.
    duration: float
    #: Multiplicative response-time jitter (log-normal sigma).
    response_sigma: float = 0.35

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @classmethod
    def from_transactions(cls, transactions: Sequence[DataTransaction],
                          directory,
                          infrastructure: frozenset = frozenset()
                          ) -> "SyntheticWorkloadModel":
        """Fit the model to matched data transactions."""
        from ..analysis.contributions import requests_per_peer
        from ..analysis.rtt import rtt_estimates

        counts = requests_per_peer(transactions, infrastructure)
        if len(counts) < 3:
            raise ValueError(
                f"need at least 3 connected peers to fit, got "
                f"{len(counts)}")
        estimates = rtt_estimates(transactions, infrastructure)
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        ranks = list(range(1, len(ordered) + 1))
        rank_counts = [count for _a, count in ordered]
        rtts = [estimates[address] for address, _c in ordered]

        se_fit = fit_stretched_exponential(rank_counts)
        rtt_trend = log_linear_fit(ranks, rtts)
        predicted = rtt_trend.predict(ranks)
        residuals = [math.log(rtt) - pred
                     for rtt, pred in zip(rtts, predicted) if rtt > 0]
        rtt_sigma = (math.sqrt(sum(r * r for r in residuals)
                               / len(residuals))
                     if residuals else 0.0)

        categories: Counter = Counter()
        for address, _count in ordered:
            category = directory.category_of(address)
            if category is not None:
                categories[category] += 1
        total = sum(categories.values())
        shares = {c: n / total for c, n in categories.items()} \
            if total else {}

        included = [t for t in transactions
                    if t.remote not in infrastructure]
        total_bytes = sum(t.payload_bytes for t in included)
        span = (max(t.request_time for t in included)
                - min(t.request_time for t in included)) if included else 0.0

        return cls(
            se_fit=se_fit,
            rtt_trend=rtt_trend,
            rtt_sigma=rtt_sigma,
            isp_shares=shares,
            n_peers=len(counts),
            bytes_per_transaction=(total_bytes / len(included)
                                   if included else 0.0),
            duration=max(span, 1.0),
        )

    @classmethod
    def from_session(cls, session_result,
                     probe_name: Optional[str] = None
                     ) -> "SyntheticWorkloadModel":
        """Fit directly from a :class:`SessionResult`."""
        probe = session_result.probe(probe_name)
        return cls.from_transactions(probe.report.data,
                                     session_result.directory,
                                     session_result.infrastructure)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, rng: random.Random,
                 n_peers: Optional[int] = None,
                 duration: Optional[float] = None
                 ) -> List[DataTransaction]:
        """Draw one synthetic session as matched data transactions.

        Peer addresses are synthetic labels carrying their ISP category
        (``"se-TELE-17"``); pass them through
        :func:`synthetic_category_of` — or any mapping of your own — when
        analysing.
        """
        n = n_peers if n_peers is not None else self.n_peers
        if n < 1:
            raise ValueError("need at least one peer")
        span = duration if duration is not None else self.duration

        counts = self._sample_counts(n)
        rtts = self._sample_rtts(n, rng)
        categories = self._sample_categories(n, rng)

        transactions: List[DataTransaction] = []
        for rank in range(n):
            address = f"se-{categories[rank].value}-{rank + 1}"
            base_rtt = rtts[rank]
            for _ in range(counts[rank]):
                start = rng.uniform(0.0, span)
                response = base_rtt * rng.lognormvariate(
                    0.0, self.response_sigma)
                transactions.append(DataTransaction(
                    remote=address, chunk=int(start), first=0, last=0,
                    request_time=start, reply_time=start + response,
                    payload_bytes=max(1, int(rng.gauss(
                        self.bytes_per_transaction,
                        self.bytes_per_transaction * 0.1)))))
        transactions.sort(key=lambda t: t.request_time)
        return transactions

    def _sample_counts(self, n: int) -> List[int]:
        """Request counts per rank from the SE law (paper Eq. 1-2)."""
        fit = self.se_fit
        # Re-anchor the intercept for the requested population size so
        # the smallest peer still gets ~1 request (Eq. 2: b = 1 + a ln n).
        b = 1.0 + fit.a * math.log(max(n, 2))
        counts = []
        for rank in range(1, n + 1):
            transformed = b - fit.a * math.log(rank)
            value = max(transformed, 1.0) ** (1.0 / fit.c)
            counts.append(max(1, int(round(value))))
        return counts

    def _sample_rtts(self, n: int, rng: random.Random) -> List[float]:
        trend = self.rtt_trend
        rtts = []
        for rank in range(1, n + 1):
            log_rtt = (trend.intercept + trend.slope * rank
                       + rng.gauss(0.0, self.rtt_sigma))
            rtts.append(min(max(math.exp(log_rtt), 0.005), 5.0))
        return rtts

    def _sample_categories(self, n: int,
                           rng: random.Random) -> List[ISPCategory]:
        if not self.isp_shares:
            return [ISPCategory.TELE] * n
        categories = list(self.isp_shares)
        weights = [self.isp_shares[c] for c in categories]
        out = []
        for _ in range(n):
            point = rng.random() * sum(weights)
            acc = 0.0
            chosen = categories[-1]
            for category, weight in zip(categories, weights):
                acc += weight
                if point < acc:
                    chosen = category
                    break
            out.append(chosen)
        return out


def synthetic_category_of(address: str) -> Optional[ISPCategory]:
    """Recover the ISP category embedded in a synthetic peer label."""
    if not address.startswith("se-"):
        return None
    try:
        label = address.split("-", 2)[1]
        return ISPCategory(label)
    except (IndexError, ValueError):
        return None
