"""Viewer-population composition.

Who watches a channel, and from which ISP, determines how much locality
is *possible*: the paper's popular program draws a TELE-heavy Chinese
audience, while its unpopular program has a small population with
comparable TELE/CNC shares and a relatively larger foreign tail.

A :class:`PopulationMix` maps ISP categories to viewer weights and,
inside each category, to concrete ASes and access-link profiles.  The
presets below are calibrated so the *returned-peer* mixes of Figures
2(a)-5(a) come out with the right orderings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from ..network.bandwidth import ADSL, CABLE, CAMPUS, AccessProfile
from ..network.isp import ISP, ISPCatalog, ISPCategory
from ..sim.random import weighted_choice


@dataclass(frozen=True)
class CategoryMix:
    """Distribution inside one ISP category."""

    #: Relative weight of this category in the viewer population.
    weight: float
    #: (ISP name, weight) pairs inside the category.
    isps: Tuple[Tuple[str, float], ...]
    #: (access profile, weight) pairs for viewers in this category.
    profiles: Tuple[Tuple[AccessProfile, float], ...]


@dataclass(frozen=True)
class PopulationMix:
    """Full ISP/AS/access-link composition of a channel's audience."""

    name: str
    categories: Dict[ISPCategory, CategoryMix]

    def sample_viewer(self, catalog: ISPCatalog,
                      rng: random.Random) -> Tuple[ISP, AccessProfile]:
        """Draw one viewer's AS and access profile."""
        category_list = list(self.categories)
        weights = [self.categories[c].weight for c in category_list]
        category = weighted_choice(rng, category_list, weights)
        mix = self.categories[category]
        isp_names = [name for name, _w in mix.isps]
        isp_weights = [w for _name, w in mix.isps]
        isp = catalog.by_name(weighted_choice(rng, isp_names, isp_weights))
        profiles = [p for p, _w in mix.profiles]
        profile_weights = [w for _p, w in mix.profiles]
        profile = weighted_choice(rng, profiles, profile_weights)
        return isp, profile

    def category_share(self, category: ISPCategory) -> float:
        """Normalised viewer share of one category."""
        total = sum(m.weight for m in self.categories.values())
        mix = self.categories.get(category)
        return mix.weight / total if mix is not None and total else 0.0


_CHINA_RESIDENTIAL = ((ADSL, 0.45), (CABLE, 0.55))
_FOREIGN_PROFILE = ((ADSL, 0.25), (CABLE, 0.55), (CAMPUS, 0.20))


def popular_channel_mix() -> PopulationMix:
    """Audience of the paper's popular program: TELE-dominated, Chinese."""
    return PopulationMix(
        name="popular",
        categories={
            ISPCategory.TELE: CategoryMix(
                0.52, (("ChinaTelecom", 1.0),), _CHINA_RESIDENTIAL),
            ISPCategory.CNC: CategoryMix(
                0.28, (("ChinaNetcom", 1.0),), _CHINA_RESIDENTIAL),
            ISPCategory.CER: CategoryMix(
                0.02, (("CERNET", 1.0),), ((CAMPUS, 1.0),)),
            ISPCategory.OTHER_CN: CategoryMix(
                0.09, (("ChinaUnicom", 0.5), ("ChinaRailcom", 0.25),
                       ("ChinaMobile", 0.25)), _CHINA_RESIDENTIAL),
            ISPCategory.FOREIGN: CategoryMix(
                0.09, (("Comcast", 0.20), ("Verizon", 0.18),
                       ("GMU-Campus", 0.07), ("DeutscheTelekom", 0.10),
                       ("NTT-OCN", 0.15), ("KoreaTelecom", 0.15),
                       ("HKBN", 0.15)), _FOREIGN_PROFILE),
        })


def unpopular_channel_mix() -> PopulationMix:
    """Audience of the unpopular program: small, TELE ~ CNC, bigger tail."""
    return PopulationMix(
        name="unpopular",
        categories={
            ISPCategory.TELE: CategoryMix(
                0.30, (("ChinaTelecom", 1.0),), _CHINA_RESIDENTIAL),
            ISPCategory.CNC: CategoryMix(
                0.34, (("ChinaNetcom", 1.0),), _CHINA_RESIDENTIAL),
            ISPCategory.CER: CategoryMix(
                0.03, (("CERNET", 1.0),), ((CAMPUS, 1.0),)),
            ISPCategory.OTHER_CN: CategoryMix(
                0.15, (("ChinaUnicom", 0.5), ("ChinaRailcom", 0.25),
                       ("ChinaMobile", 0.25)), _CHINA_RESIDENTIAL),
            ISPCategory.FOREIGN: CategoryMix(
                0.18, (("Comcast", 0.22), ("Verizon", 0.20),
                       ("GMU-Campus", 0.05), ("DeutscheTelekom", 0.10),
                       ("NTT-OCN", 0.15), ("KoreaTelecom", 0.15),
                       ("HKBN", 0.13)), _FOREIGN_PROFILE),
        })


def mix_for(popularity_name: str) -> PopulationMix:
    """Preset lookup by name ("popular" / "unpopular")."""
    presets = {
        "popular": popular_channel_mix,
        "unpopular": unpopular_channel_mix,
    }
    try:
        return presets[popularity_name]()
    except KeyError:
        raise ValueError(f"unknown mix {popularity_name!r}; "
                         f"expected one of {sorted(presets)}") from None
