"""The four-week measurement campaign (Figure 6).

The paper collected traces from 2008-10-11 to 2008-11-07 — 28 days —
with two probes in each of CNC, TELE and Mason, and plotted the daily
traffic locality (percentage of bytes served from the probe's own ISP),
averaged over the two concurrent probes per ISP.

:func:`run_campaign` reproduces that protocol: one session per day per
program, with day-to-day audience variation.  Two effects drive the
paper's observed variance:

* audience size follows the diurnal/weekly pattern plus noise, and
* the *foreign* share of the Chinese popular program's audience swings
  wildly from day to day ("the popular program in China is not
  necessarily popular outside China") — which is why the Mason curve
  whips around while the Chinese probes stay stable.
"""

from __future__ import annotations

import dataclasses
import math
import os
import signal
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.locality import traffic_locality
from ..checkpoint import (CampaignCheckpointStore, CheckpointError,
                          CheckpointPolicy, config_digest_of)
from ..faults import FaultSchedule
from ..network.isp import ISPCategory
from ..obs import INFO, FlowSpec, Instrumentation
from ..obs import resolve as resolve_obs
from ..obs.live import KIND_CAMPAIGN_START, KIND_DAY_COMPLETE
from ..parallel.jobs import Job, run_jobs
from ..sim.random import RandomRouter
from ..streaming.chunks import ChunkGeometry
from ..streaming.video import Popularity
from .churn import ChurnModel
from .diurnal import DiurnalPattern, session_start_seconds
from .popularity import (PopulationMix, popular_channel_mix,
                         unpopular_channel_mix)
from .scenario import (CNC_PROBE, MASON_PROBE, TELE_PROBE, ProbeSpec,
                       ScenarioConfig, SessionScenario)


@dataclass
class CampaignConfig:
    """Knobs of the 28-day campaign."""

    seed: int = 11
    days: int = 28
    #: Baseline concurrent audience at peak for each program.
    popular_population: int = 90
    unpopular_population: int = 30
    #: Per-day session length (scaled down from the paper's 2 h for
    #: tractability; locality percentages stabilise within minutes).
    session_duration: float = 900.0
    warmup: float = 200.0
    #: Two probes per ISP, as deployed by the authors.
    probe_isps: Tuple[str, ...] = ("ChinaNetcom", "ChinaTelecom",
                                   "GMU-Campus")
    #: Day-to-day multiplicative audience noise (log-normal sigma).
    audience_noise_sigma: float = 0.20
    #: Day-to-day swing of the popular program's foreign share.
    foreign_swing_sigma: float = 0.8
    diurnal: DiurnalPattern = field(default_factory=DiurnalPattern)
    geometry: ChunkGeometry = field(default_factory=ChunkGeometry)
    #: Observability bundle threaded into every daily session; the
    #: campaign also reports per-day progress through it.
    instrumentation: Optional[Instrumentation] = None
    #: Fault schedule armed onto *every* daily session (times are
    #: session-relative seconds, like any scenario schedule).
    faults: Optional[FaultSchedule] = None
    #: Traffic-flow ledger knobs for every daily session; ``None`` falls
    #: back to the instrumentation bundle's ``flows_spec``.  Excluded
    #: from the config digest like instrumentation — flow accounting
    #: never changes simulation results.
    flows: Optional[FlowSpec] = None
    #: Extra per-session run hook (`hook(sim, deployment, manager,
    #: probe_peers)`), composed with the kill-switch hook.  Test seam
    #: for attaching extra taps/samplers to every campaign unit.
    session_hook: Optional[Callable] = None


@dataclass
class DailyLocality:
    """One day's locality results for one program."""

    day: int
    popularity: Popularity
    population: int
    #: ISP label -> average traffic locality across that ISP's probes.
    locality_by_isp: Dict[str, float]
    #: Simulator events executed by this day's session; carried in
    #: checkpoint artifacts so a resumed run's ``run_summary`` footer
    #: matches the uninterrupted run.
    events_executed: int = 0
    #: The day's flow-ledger snapshot (``FlowLedger.snapshot_state``)
    #: when the campaign ran with a flow spec; carried through
    #: checkpoints so resumed runs emit byte-identical flow artifacts.
    flows: Optional[dict] = None


@dataclass
class CampaignResult:
    """Figure 6's two panels as day-indexed series."""

    config: CampaignConfig
    popular: List[DailyLocality]
    unpopular: List[DailyLocality]

    def series(self, popularity: Popularity,
               isp_label: str) -> List[float]:
        """Day-ordered locality percentages for one curve of Figure 6."""
        days = self.popular if popularity is Popularity.POPULAR \
            else self.unpopular
        return [day.locality_by_isp.get(isp_label, 0.0) for day in days]


_PROBE_LABELS = {"ChinaNetcom": "CNC", "ChinaTelecom": "TELE",
                 "GMU-Campus": "Mason"}


def _swing_foreign_share(mix: PopulationMix, factor: float) -> PopulationMix:
    """Scale the FOREIGN weight of ``mix`` by ``factor`` (re-normalised
    implicitly, since weights are relative)."""
    categories = dict(mix.categories)
    foreign = categories[ISPCategory.FOREIGN]
    categories[ISPCategory.FOREIGN] = dataclasses.replace(
        foreign, weight=foreign.weight * factor)
    return PopulationMix(name=mix.name, categories=categories)


def _probe_specs(probe_isps: Sequence[str]) -> Tuple[ProbeSpec, ...]:
    base = {"ChinaNetcom": CNC_PROBE, "ChinaTelecom": TELE_PROBE,
            "GMU-Campus": MASON_PROBE}
    specs: List[ProbeSpec] = []
    for isp_name in probe_isps:
        template = base.get(isp_name, ProbeSpec(isp_name.lower(), isp_name))
        for replica in ("a", "b"):
            specs.append(dataclasses.replace(
                template, name=f"{template.name}-{replica}"))
    return tuple(specs)


def campaign_config_digest(config: CampaignConfig) -> str:
    """Digest of every result-affecting campaign knob.

    Instrumentation is deliberately excluded: telemetry on/off never
    changes simulation results (the determinism contract), so a campaign
    checkpointed with ``--live`` resumes cleanly without it and vice
    versa.  Everything else — seed, shape, populations, noise models,
    chunk geometry, fault schedule — is in, so resuming under a
    different configuration fails loudly instead of splicing
    incompatible days together.
    """
    return config_digest_of({
        "seed": config.seed,
        "days": config.days,
        "popular_population": config.popular_population,
        "unpopular_population": config.unpopular_population,
        "session_duration": config.session_duration,
        "warmup": config.warmup,
        "probe_isps": list(config.probe_isps),
        "audience_noise_sigma": config.audience_noise_sigma,
        "foreign_swing_sigma": config.foreign_swing_sigma,
        "diurnal": dataclasses.asdict(config.diurnal),
        "geometry": dataclasses.asdict(config.geometry),
        "faults": (config.faults.to_dict()
                   if config.faults is not None else None),
    })


def _unit_payload(daily: DailyLocality) -> dict:
    """The JSON body persisted for one completed (program, day) unit.

    Locality values are stored at full float precision — JSON floats
    round-trip exactly in CPython, which is what makes a resumed
    campaign byte-identical to an uninterrupted one at the golden-digest
    level."""
    payload = {"population": daily.population,
               "locality_by_isp": dict(daily.locality_by_isp),
               "events_executed": daily.events_executed}
    if daily.flows is not None:
        payload["flows"] = daily.flows
    return payload


def _daily_from_payload(key: Tuple[str, int],
                        payload: dict) -> DailyLocality:
    """Rebuild a :class:`DailyLocality` from a checkpoint unit artifact."""
    popularity, day = key
    return DailyLocality(
        day=day, popularity=Popularity(popularity),
        population=payload["population"],
        locality_by_isp=dict(payload["locality_by_isp"]),
        events_executed=payload.get("events_executed", 0),
        flows=payload.get("flows"))


#: ``popularity:day:events`` — when set, the matching campaign unit
#: SIGKILLs its own process once the simulator has executed that many
#: events.  Test-only seam for the kill/resume chaos suite: the check
#: runs at simulated-time boundaries, so the kill point is deterministic
#: in event count (the killed, un-checkpointed day is simply re-run from
#: scratch on resume).
KILL_SWITCH_ENV = "REPRO_CAMPAIGN_SIGKILL"


def _kill_switch_hook(day: int,
                      popularity: Popularity) -> Optional[Callable]:
    spec = os.environ.get(KILL_SWITCH_ENV)
    if not spec:
        return None
    try:
        pop_value, day_text, events_text = spec.split(":")
        target_day = int(day_text)
        threshold = int(events_text)
    except ValueError:
        raise ValueError(
            f"{KILL_SWITCH_ENV} must be 'popularity:day:events', "
            f"got {spec!r}")
    if pop_value != popularity.value or target_day != day:
        return None

    def hook(sim, deployment, manager, probe_peers) -> None:
        def check() -> None:
            if sim.events_executed >= threshold:
                os.kill(os.getpid(), signal.SIGKILL)
        sim.every(1.0, check, label="kill-switch")

    return hook


def _run_day(config: CampaignConfig, day: int, popularity: Popularity,
             router: RandomRouter) -> DailyLocality:
    rng = router.fork(f"day:{day}:{popularity.value}").stream("campaign")
    if popularity is Popularity.POPULAR:
        mix = popular_channel_mix()
        base_population = config.popular_population
        swing = math.exp(rng.gauss(0.0, config.foreign_swing_sigma))
        mix = _swing_foreign_share(mix, swing)
    else:
        mix = unpopular_channel_mix()
        base_population = config.unpopular_population
        swing = math.exp(rng.gauss(0.0, config.foreign_swing_sigma / 2))
        mix = _swing_foreign_share(mix, swing)

    start = session_start_seconds(day)
    factor = config.diurnal.factor(start)
    noise = math.exp(rng.gauss(0.0, config.audience_noise_sigma))
    population = max(10, int(round(base_population * factor * noise)))

    kill_hook = _kill_switch_hook(day, popularity)
    extra_hook = config.session_hook
    if kill_hook is not None and extra_hook is not None:
        def run_hook(sim, deployment, manager, probe_peers,
                     _kill=kill_hook, _extra=extra_hook) -> None:
            _kill(sim, deployment, manager, probe_peers)
            _extra(sim, deployment, manager, probe_peers)
    else:
        run_hook = kill_hook if kill_hook is not None else extra_hook

    specs = _probe_specs(config.probe_isps)
    scenario_config = ScenarioConfig(
        seed=router.master_seed + day * 101 + (0 if popularity is
                                               Popularity.POPULAR else 1),
        population=population,
        mix=mix,
        popularity=popularity,
        probes=specs,
        warmup=config.warmup,
        duration=config.session_duration,
        geometry=config.geometry,
        churn=ChurnModel(),
        instrumentation=config.instrumentation,
        faults=config.faults,
        flows=config.flows,
        run_hook=run_hook,
    )
    result = SessionScenario(scenario_config).run()

    per_isp: Dict[str, List[float]] = {}
    for probe_result in result.probes.values():
        category = result.directory.category_of(probe_result.address)
        locality = traffic_locality(
            probe_result.report.data, result.directory, category,
            result.infrastructure)
        label = _PROBE_LABELS.get(probe_result.spec.isp_name,
                                  probe_result.spec.isp_name)
        per_isp.setdefault(label, []).append(locality)

    averaged = {label: 100.0 * sum(vals) / len(vals)
                for label, vals in per_isp.items()}
    return DailyLocality(
        day=day, popularity=popularity, population=population,
        locality_by_isp=averaged,
        events_executed=result.deployment.sim.events_executed,
        flows=(result.flows.snapshot_state()
               if result.flows is not None else None))


def _emit_day(config: CampaignConfig, obs: Instrumentation,
              popularity: Popularity, daily: DailyLocality,
              restored: bool = False) -> None:
    """Campaign-level progress/trace for one finished day.

    Shared by the serial and parallel paths so both produce the same
    campaign-level event stream, in the same deterministic order.
    ``restored`` marks a day replayed from a checkpoint rather than
    simulated in this process; the flag is added to the records only
    when set, so non-resumed streams stay byte-identical.
    """
    if not obs.enabled:
        return
    restored_fields = {"restored": True} if restored else {}
    obs.trace.emit(0.0, INFO, "campaign_day",
                   day=daily.day + 1, days=config.days,
                   popularity=popularity.value,
                   population=daily.population,
                   locality_by_isp=daily.locality_by_isp,
                   **restored_fields)
    bus = obs.progress_bus
    if bus is not None:
        bus.emit(KIND_DAY_COMPLETE,
                 day=daily.day + 1, days=config.days,
                 popularity=popularity.value,
                 population=daily.population,
                 locality_by_isp={label: round(value, 3)
                                  for label, value
                                  in sorted(daily.locality_by_isp.items())},
                 **restored_fields)
    if obs.spans.enabled:
        obs.spans.instant("campaign_day", "workload", float(daily.day),
                          actor="campaign", day=daily.day + 1,
                          popularity=popularity.value,
                          population=daily.population)
    if obs.progress:
        stream = obs.progress_stream
        summary = " ".join(
            f"{label}={value:.1f}%" for label, value
            in sorted(daily.locality_by_isp.items()))
        print(f"[campaign] day {daily.day + 1}/{config.days} "
              f"({popularity.value}) pop={daily.population} "
              f"{summary}",
              file=stream if stream is not None else sys.stderr)


def _campaign_day_job(config: CampaignConfig, day: int,
                      popularity_value: str) -> DailyLocality:
    """Worker entry point: one (day, program) simulation.

    The day's RNG streams derive from ``(config.seed, day, popularity)``
    alone — the router fork in :func:`_run_day` consumes no shared
    state — so rebuilding the router here yields the exact draw sequence
    the serial loop would have used.
    """
    return _run_day(config, day, Popularity(popularity_value),
                    RandomRouter(config.seed))


def campaign_jobs(config: CampaignConfig) -> List[Job]:
    """The campaign's independent job list: one job per (program, day).

    The configs shipped to workers carry no instrumentation bundle —
    sinks do not pickle and worker-side metrics would race; the parent
    re-emits the campaign-level events after the deterministic merge.
    """
    worker_config = dataclasses.replace(config, instrumentation=None)
    return [Job(key=(popularity.value, day), fn=_campaign_day_job,
                args=(worker_config, day, popularity.value))
            for popularity in (Popularity.POPULAR, Popularity.UNPOPULAR)
            for day in range(config.days)]


def assemble_campaign(config: CampaignConfig,
                      merged: Dict[Tuple[str, int], DailyLocality]
                      ) -> CampaignResult:
    """Build the result from merged ``{(program, day): DailyLocality}``.

    Pure and order-insensitive: only the day index, never the insertion
    (= completion) order of ``merged``, decides where a day lands.
    """
    popular = [merged[(Popularity.POPULAR.value, day)]
               for day in range(config.days)]
    unpopular = [merged[(Popularity.UNPOPULAR.value, day)]
                 for day in range(config.days)]
    return CampaignResult(config=config, popular=popular,
                          unpopular=unpopular)


def campaign_unit_keys(config: CampaignConfig) -> List[Tuple[str, int]]:
    """Canonical unit order: popular days 0..N-1, then unpopular.

    This is the order the serial loop simulates, the parallel job list
    ships, and the resumed run replays — one ordering everywhere keeps
    every campaign-level event stream deterministic."""
    return [(popularity.value, day)
            for popularity in (Popularity.POPULAR, Popularity.UNPOPULAR)
            for day in range(config.days)]


def _validate_restored(config: CampaignConfig,
                       restored: Dict[Tuple[str, int], DailyLocality],
                       store: CampaignCheckpointStore) -> None:
    expected = set(campaign_unit_keys(config))
    unknown = sorted(set(restored) - expected)
    if unknown:
        raise CheckpointError(
            f"checkpoint at {store.root} contains units outside the "
            f"campaign shape: {unknown[:3]}")
    if config.flows is not None:
        # A resumed flows-enabled run replays flow snapshots instead of
        # re-simulating; a checkpoint written without them (or with a
        # different ledger shape) cannot produce the byte-identical
        # artifact the contract promises, so fail loudly.
        for key in sorted(restored):
            snapshot = restored[key].flows
            if snapshot is None:
                raise CheckpointError(
                    f"checkpoint at {store.root} was written without "
                    f"flow accounting (unit {key} has no flow snapshot) "
                    f"but this run enables it; re-run without --flows "
                    f"or restart the campaign")
            if (snapshot.get("window") != config.flows.window
                    or snapshot.get("top_k") != config.flows.top_k):
                raise CheckpointError(
                    f"checkpoint unit {key} recorded flows with window="
                    f"{snapshot.get('window')} top_k="
                    f"{snapshot.get('top_k')}, but this run uses window="
                    f"{config.flows.window} top_k={config.flows.top_k}")


def _emit_flows(config: CampaignConfig, obs: Instrumentation,
                merged: Dict[Tuple[str, int], DailyLocality]) -> None:
    """Write per-unit flow records to the artifact, in canonical order.

    Parent-side only, after the deterministic merge — exactly like the
    campaign-level progress records — so the flows artifact is
    byte-identical for every ``jobs`` value and across resume.
    """
    writer = getattr(obs, "flows", None)
    if writer is None or config.flows is None:
        return
    for key in campaign_unit_keys(config):
        daily = merged.get(key)
        if daily is not None and daily.flows is not None:
            writer.write_unit({"day": key[1], "popularity": key[0]},
                              daily.flows)


def run_campaign(config: Optional[CampaignConfig] = None, *,
                 jobs: int = 1, timeout: Optional[float] = None,
                 retries: int = 1,
                 checkpoint: Optional[CheckpointPolicy] = None
                 ) -> CampaignResult:
    """Run the full campaign: ``days`` sessions per program.

    ``jobs`` fans the independent daily sessions out to that many worker
    processes (see ``docs/PARALLEL.md``); the result is byte-identical
    for every ``jobs`` value.  ``timeout``/``retries`` bound stuck and
    crashed workers when ``jobs > 1``.

    ``checkpoint`` makes the campaign resumable (``docs/CHECKPOINT.md``):
    completed (program, day) units are persisted as atomic,
    digest-stamped artifacts every ``checkpoint.every`` units, and with
    ``checkpoint.resume`` the persisted units are replayed instead of
    re-simulated.  Because every unit's RNG streams derive from
    ``(seed, day, program)`` alone, a resumed campaign is byte-identical
    to an uninterrupted one.
    """
    config = config if config is not None else CampaignConfig()
    obs = resolve_obs(config.instrumentation)
    if config.flows is None and obs.enabled and obs.flows_spec is not None:
        # A --flows run turns on campaign-wide flow accounting through
        # the bundle; the spec must live on the config so worker
        # processes (shipped instrumentation=None) see it too.
        config = dataclasses.replace(config, flows=obs.flows_spec)

    store: Optional[CampaignCheckpointStore] = None
    digest = ""
    restored: Dict[Tuple[str, int], DailyLocality] = {}
    if checkpoint is not None:
        store = CampaignCheckpointStore(checkpoint.path)
        digest = campaign_config_digest(config)
        if checkpoint.resume:
            store.load_manifest(digest)
            for key, payload in store.iter_units(digest):
                restored[key] = _daily_from_payload(key, payload)
            _validate_restored(config, restored, store)
        else:
            store.initialize(digest, seed=config.seed, days=config.days,
                             total_units=2 * config.days)

    bus = obs.progress_bus
    if bus is not None:
        # ``jobs`` is mode metadata; the deterministic cross-mode view
        # strips it (MODE_FIELDS) so serial and --jobs N streams match.
        # ``resumed_units`` likewise, and it is only present on resumed
        # runs so non-checkpointed streams are unchanged.
        resume_fields = ({"resumed_units": len(restored)}
                         if checkpoint is not None and checkpoint.resume
                         else {})
        bus.emit(KIND_CAMPAIGN_START, days=config.days,
                 total_units=2 * config.days, seed=config.seed,
                 jobs=jobs, **resume_fields)

    if jobs > 1:
        all_jobs = campaign_jobs(config)
        if store is None:
            merged = run_jobs(all_jobs, workers=jobs, timeout=timeout,
                              retries=retries,
                              obs=config.instrumentation)
        else:
            merged = dict(restored)
            pending = [job for job in all_jobs
                       if job.key not in restored]
            # Batches below ``jobs`` would serialise the pool, so the
            # flush interval is at least one full batch of workers.
            batch = max(checkpoint.every, jobs)
            for index in range(0, len(pending), batch):
                chunk = pending[index:index + batch]
                done = run_jobs(chunk, workers=jobs, timeout=timeout,
                                retries=retries,
                                obs=config.instrumentation)
                for key in sorted(done):
                    store.write_unit(key, digest,
                                     _unit_payload(done[key]))
                merged.update(done)
        result = assemble_campaign(config, merged)
        for popularity, days in ((Popularity.POPULAR, result.popular),
                                 (Popularity.UNPOPULAR, result.unpopular)):
            for daily in days:
                _emit_day(config, obs, popularity, daily,
                          restored=(popularity.value, daily.day)
                          in restored)
        _emit_flows(config, obs, merged)
        return result

    router = RandomRouter(config.seed)
    merged = {}
    unflushed: List[Tuple[str, int]] = []

    def flush() -> None:
        for key in unflushed:
            store.write_unit(key, digest, _unit_payload(merged[key]))
        unflushed.clear()

    for key in campaign_unit_keys(config):
        popularity = Popularity(key[0])
        daily = restored.get(key)
        if daily is not None:
            merged[key] = daily
            if obs.enabled:
                # Fold the restored day's recorded event count into the
                # live counter so the run_summary footer of a resumed
                # run matches the uninterrupted run exactly.
                obs.metrics.counter("sim.events_executed").inc(
                    daily.events_executed)
            _emit_day(config, obs, popularity, daily, restored=True)
            continue
        daily = _run_day(config, key[1], popularity, router)
        merged[key] = daily
        if store is not None:
            unflushed.append(key)
            if len(unflushed) >= checkpoint.every:
                flush()
        _emit_day(config, obs, popularity, daily)
    if store is not None:
        flush()
    _emit_flows(config, obs, merged)
    return assemble_campaign(config, merged)
