"""The four-week measurement campaign (Figure 6).

The paper collected traces from 2008-10-11 to 2008-11-07 — 28 days —
with two probes in each of CNC, TELE and Mason, and plotted the daily
traffic locality (percentage of bytes served from the probe's own ISP),
averaged over the two concurrent probes per ISP.

:func:`run_campaign` reproduces that protocol: one session per day per
program, with day-to-day audience variation.  Two effects drive the
paper's observed variance:

* audience size follows the diurnal/weekly pattern plus noise, and
* the *foreign* share of the Chinese popular program's audience swings
  wildly from day to day ("the popular program in China is not
  necessarily popular outside China") — which is why the Mason curve
  whips around while the Chinese probes stay stable.
"""

from __future__ import annotations

import dataclasses
import math
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.locality import traffic_locality
from ..faults import FaultSchedule
from ..network.isp import ISPCategory
from ..obs import INFO, Instrumentation
from ..obs import resolve as resolve_obs
from ..obs.live import KIND_CAMPAIGN_START, KIND_DAY_COMPLETE
from ..parallel.jobs import Job, run_jobs
from ..sim.random import RandomRouter
from ..streaming.chunks import ChunkGeometry
from ..streaming.video import Popularity
from .churn import ChurnModel
from .diurnal import DiurnalPattern, session_start_seconds
from .popularity import (PopulationMix, popular_channel_mix,
                         unpopular_channel_mix)
from .scenario import (CNC_PROBE, MASON_PROBE, TELE_PROBE, ProbeSpec,
                       ScenarioConfig, SessionScenario)


@dataclass
class CampaignConfig:
    """Knobs of the 28-day campaign."""

    seed: int = 11
    days: int = 28
    #: Baseline concurrent audience at peak for each program.
    popular_population: int = 90
    unpopular_population: int = 30
    #: Per-day session length (scaled down from the paper's 2 h for
    #: tractability; locality percentages stabilise within minutes).
    session_duration: float = 900.0
    warmup: float = 200.0
    #: Two probes per ISP, as deployed by the authors.
    probe_isps: Tuple[str, ...] = ("ChinaNetcom", "ChinaTelecom",
                                   "GMU-Campus")
    #: Day-to-day multiplicative audience noise (log-normal sigma).
    audience_noise_sigma: float = 0.20
    #: Day-to-day swing of the popular program's foreign share.
    foreign_swing_sigma: float = 0.8
    diurnal: DiurnalPattern = field(default_factory=DiurnalPattern)
    geometry: ChunkGeometry = field(default_factory=ChunkGeometry)
    #: Observability bundle threaded into every daily session; the
    #: campaign also reports per-day progress through it.
    instrumentation: Optional[Instrumentation] = None
    #: Fault schedule armed onto *every* daily session (times are
    #: session-relative seconds, like any scenario schedule).
    faults: Optional[FaultSchedule] = None


@dataclass
class DailyLocality:
    """One day's locality results for one program."""

    day: int
    popularity: Popularity
    population: int
    #: ISP label -> average traffic locality across that ISP's probes.
    locality_by_isp: Dict[str, float]


@dataclass
class CampaignResult:
    """Figure 6's two panels as day-indexed series."""

    config: CampaignConfig
    popular: List[DailyLocality]
    unpopular: List[DailyLocality]

    def series(self, popularity: Popularity,
               isp_label: str) -> List[float]:
        """Day-ordered locality percentages for one curve of Figure 6."""
        days = self.popular if popularity is Popularity.POPULAR \
            else self.unpopular
        return [day.locality_by_isp.get(isp_label, 0.0) for day in days]


_PROBE_LABELS = {"ChinaNetcom": "CNC", "ChinaTelecom": "TELE",
                 "GMU-Campus": "Mason"}


def _swing_foreign_share(mix: PopulationMix, factor: float) -> PopulationMix:
    """Scale the FOREIGN weight of ``mix`` by ``factor`` (re-normalised
    implicitly, since weights are relative)."""
    categories = dict(mix.categories)
    foreign = categories[ISPCategory.FOREIGN]
    categories[ISPCategory.FOREIGN] = dataclasses.replace(
        foreign, weight=foreign.weight * factor)
    return PopulationMix(name=mix.name, categories=categories)


def _probe_specs(probe_isps: Sequence[str]) -> Tuple[ProbeSpec, ...]:
    base = {"ChinaNetcom": CNC_PROBE, "ChinaTelecom": TELE_PROBE,
            "GMU-Campus": MASON_PROBE}
    specs: List[ProbeSpec] = []
    for isp_name in probe_isps:
        template = base.get(isp_name, ProbeSpec(isp_name.lower(), isp_name))
        for replica in ("a", "b"):
            specs.append(dataclasses.replace(
                template, name=f"{template.name}-{replica}"))
    return tuple(specs)


def _run_day(config: CampaignConfig, day: int, popularity: Popularity,
             router: RandomRouter) -> DailyLocality:
    rng = router.fork(f"day:{day}:{popularity.value}").stream("campaign")
    if popularity is Popularity.POPULAR:
        mix = popular_channel_mix()
        base_population = config.popular_population
        swing = math.exp(rng.gauss(0.0, config.foreign_swing_sigma))
        mix = _swing_foreign_share(mix, swing)
    else:
        mix = unpopular_channel_mix()
        base_population = config.unpopular_population
        swing = math.exp(rng.gauss(0.0, config.foreign_swing_sigma / 2))
        mix = _swing_foreign_share(mix, swing)

    start = session_start_seconds(day)
    factor = config.diurnal.factor(start)
    noise = math.exp(rng.gauss(0.0, config.audience_noise_sigma))
    population = max(10, int(round(base_population * factor * noise)))

    specs = _probe_specs(config.probe_isps)
    scenario_config = ScenarioConfig(
        seed=router.master_seed + day * 101 + (0 if popularity is
                                               Popularity.POPULAR else 1),
        population=population,
        mix=mix,
        popularity=popularity,
        probes=specs,
        warmup=config.warmup,
        duration=config.session_duration,
        geometry=config.geometry,
        churn=ChurnModel(),
        instrumentation=config.instrumentation,
        faults=config.faults,
    )
    result = SessionScenario(scenario_config).run()

    per_isp: Dict[str, List[float]] = {}
    for probe_result in result.probes.values():
        category = result.directory.category_of(probe_result.address)
        locality = traffic_locality(
            probe_result.report.data, result.directory, category,
            result.infrastructure)
        label = _PROBE_LABELS.get(probe_result.spec.isp_name,
                                  probe_result.spec.isp_name)
        per_isp.setdefault(label, []).append(locality)

    averaged = {label: 100.0 * sum(vals) / len(vals)
                for label, vals in per_isp.items()}
    return DailyLocality(day=day, popularity=popularity,
                         population=population, locality_by_isp=averaged)


def _emit_day(config: CampaignConfig, obs: Instrumentation,
              popularity: Popularity, daily: DailyLocality) -> None:
    """Campaign-level progress/trace for one finished day.

    Shared by the serial and parallel paths so both produce the same
    campaign-level event stream, in the same deterministic order.
    """
    if not obs.enabled:
        return
    obs.trace.emit(0.0, INFO, "campaign_day",
                   day=daily.day + 1, days=config.days,
                   popularity=popularity.value,
                   population=daily.population,
                   locality_by_isp=daily.locality_by_isp)
    bus = obs.progress_bus
    if bus is not None:
        bus.emit(KIND_DAY_COMPLETE,
                 day=daily.day + 1, days=config.days,
                 popularity=popularity.value,
                 population=daily.population,
                 locality_by_isp={label: round(value, 3)
                                  for label, value
                                  in sorted(daily.locality_by_isp.items())})
    if obs.spans.enabled:
        obs.spans.instant("campaign_day", "workload", float(daily.day),
                          actor="campaign", day=daily.day + 1,
                          popularity=popularity.value,
                          population=daily.population)
    if obs.progress:
        stream = obs.progress_stream
        summary = " ".join(
            f"{label}={value:.1f}%" for label, value
            in sorted(daily.locality_by_isp.items()))
        print(f"[campaign] day {daily.day + 1}/{config.days} "
              f"({popularity.value}) pop={daily.population} "
              f"{summary}",
              file=stream if stream is not None else sys.stderr)


def _campaign_day_job(config: CampaignConfig, day: int,
                      popularity_value: str) -> DailyLocality:
    """Worker entry point: one (day, program) simulation.

    The day's RNG streams derive from ``(config.seed, day, popularity)``
    alone — the router fork in :func:`_run_day` consumes no shared
    state — so rebuilding the router here yields the exact draw sequence
    the serial loop would have used.
    """
    return _run_day(config, day, Popularity(popularity_value),
                    RandomRouter(config.seed))


def campaign_jobs(config: CampaignConfig) -> List[Job]:
    """The campaign's independent job list: one job per (program, day).

    The configs shipped to workers carry no instrumentation bundle —
    sinks do not pickle and worker-side metrics would race; the parent
    re-emits the campaign-level events after the deterministic merge.
    """
    worker_config = dataclasses.replace(config, instrumentation=None)
    return [Job(key=(popularity.value, day), fn=_campaign_day_job,
                args=(worker_config, day, popularity.value))
            for popularity in (Popularity.POPULAR, Popularity.UNPOPULAR)
            for day in range(config.days)]


def assemble_campaign(config: CampaignConfig,
                      merged: Dict[Tuple[str, int], DailyLocality]
                      ) -> CampaignResult:
    """Build the result from merged ``{(program, day): DailyLocality}``.

    Pure and order-insensitive: only the day index, never the insertion
    (= completion) order of ``merged``, decides where a day lands.
    """
    popular = [merged[(Popularity.POPULAR.value, day)]
               for day in range(config.days)]
    unpopular = [merged[(Popularity.UNPOPULAR.value, day)]
                 for day in range(config.days)]
    return CampaignResult(config=config, popular=popular,
                          unpopular=unpopular)


def run_campaign(config: Optional[CampaignConfig] = None, *,
                 jobs: int = 1, timeout: Optional[float] = None,
                 retries: int = 1) -> CampaignResult:
    """Run the full campaign: ``days`` sessions per program.

    ``jobs`` fans the independent daily sessions out to that many worker
    processes (see ``docs/PARALLEL.md``); the result is byte-identical
    for every ``jobs`` value.  ``timeout``/``retries`` bound stuck and
    crashed workers when ``jobs > 1``.
    """
    config = config if config is not None else CampaignConfig()
    obs = resolve_obs(config.instrumentation)
    bus = obs.progress_bus
    if bus is not None:
        # ``jobs`` is mode metadata; the deterministic cross-mode view
        # strips it (MODE_FIELDS) so serial and --jobs N streams match.
        bus.emit(KIND_CAMPAIGN_START, days=config.days,
                 total_units=2 * config.days, seed=config.seed,
                 jobs=jobs)

    if jobs > 1:
        merged = run_jobs(campaign_jobs(config), workers=jobs,
                          timeout=timeout, retries=retries,
                          obs=config.instrumentation)
        result = assemble_campaign(config, merged)
        for popularity, days in ((Popularity.POPULAR, result.popular),
                                 (Popularity.UNPOPULAR, result.unpopular)):
            for daily in days:
                _emit_day(config, obs, popularity, daily)
        return result

    router = RandomRouter(config.seed)

    def run_days(popularity: Popularity) -> List[DailyLocality]:
        days = []
        for day in range(config.days):
            daily = _run_day(config, day, popularity, router)
            days.append(daily)
            _emit_day(config, obs, popularity, daily)
        return days

    popular = run_days(Popularity.POPULAR)
    unpopular = run_days(Popularity.UNPOPULAR)
    return CampaignResult(config=config, popular=popular,
                          unpopular=unpopular)
