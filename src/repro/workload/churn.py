"""Peer churn: arrivals, session durations, departures.

Live-streaming audiences are far more volatile than file-sharing swarms:
viewers zap in and out.  The churn model keeps a channel's concurrent
audience near a target size by replacing departures with fresh arrivals,
with log-normal session durations (heavy-tailed, as every IPTV
measurement study finds) and a small probability of *silent* departures
(crashes) that exercise the protocol's timeout paths.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.engine import Simulator


@dataclass(frozen=True)
class ChurnModel:
    """Statistical shape of viewer sessions."""

    #: Median session length in seconds (log-normal).
    median_session: float = 1500.0
    #: Log-normal sigma of session lengths.
    session_sigma: float = 0.9
    #: Minimum session length (zapping away almost immediately).
    min_session: float = 120.0
    #: Probability a departure is silent (no Goodbye messages).
    crash_probability: float = 0.15

    def sample_session(self, rng: random.Random) -> float:
        # mu = ln(median) gives a log-normal with the requested median.
        duration = rng.lognormvariate(
            math.log(self.median_session), self.session_sigma)
        return max(duration, self.min_session)

    def is_crash(self, rng: random.Random) -> bool:
        return rng.random() < self.crash_probability


class PopulationManager:
    """Keeps a swarm near a target size with churned viewers.

    ``spawn_viewer`` is a factory supplied by the scenario: it creates,
    joins and returns a fresh peer.  The manager only decides *when*
    viewers come and go.
    """

    def __init__(self, sim: Simulator, target_size: int,
                 spawn_viewer: Callable[[], object],
                 churn: Optional[ChurnModel] = None,
                 ramp_seconds: float = 120.0,
                 replace_departures: bool = True) -> None:
        if target_size < 1:
            raise ValueError("target_size must be >= 1")
        self.sim = sim
        self.target_size = target_size
        self.spawn_viewer = spawn_viewer
        self.churn = churn if churn is not None else ChurnModel()
        self.ramp_seconds = ramp_seconds
        self.replace_departures = replace_departures
        self._rng = sim.random.stream("population")
        self._stopped = False
        self.active: List[object] = []
        self.total_spawned = 0
        self.total_departed = 0
        self.total_crashed = 0
        #: Called with each freshly spawned viewer (fault injection uses
        #: this to turn a fraction of arrivals adversarial).  Hooks make
        #: zero draws from the population stream, so an empty list — the
        #: clean path — changes nothing.
        self._spawn_hooks: List[Callable[[object], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the initial audience, staggered over the ramp window."""
        for _ in range(self.target_size):
            delay = self._rng.uniform(0.0, self.ramp_seconds)
            self.sim.call_after(delay, self._arrive, label="viewer-arrive")

    def stop(self) -> None:
        """Stop replacing departures (scenario is winding down)."""
        self._stopped = True

    @property
    def active_count(self) -> int:
        return len(self.active)

    # ------------------------------------------------------------------
    # Fault-injection hooks
    # ------------------------------------------------------------------
    def inject_arrival(self) -> None:
        """One extra viewer beyond the target size (flash crowds).

        The extra viewer churns like any other: session length from the
        churn model, goodbye or crash on departure.
        """
        self._arrive()

    def add_spawn_hook(self, hook: Callable[[object], None]) -> None:
        """Observe every future arrival (the new viewer is passed in)."""
        self._spawn_hooks.append(hook)

    def remove_spawn_hook(self, hook: Callable[[object], None]) -> None:
        """Detach a spawn hook; unknown hooks are ignored."""
        try:
            self._spawn_hooks.remove(hook)
        except ValueError:
            pass

    def crash_viewer(self, viewer: object) -> bool:
        """Crash one active viewer *now* (correlated blackouts).

        Silent departure, no replacement: an ISP-wide blackout removes
        its audience.  The viewer's still-pending natural departure
        event finds it gone and no-ops.  Returns False if the viewer
        was not active (already departed).
        """
        if viewer not in self.active:
            return False
        self.active.remove(viewer)
        self.total_departed += 1
        self.total_crashed += 1
        viewer.crash()
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _arrive(self) -> None:
        if self._stopped:
            return
        viewer = self.spawn_viewer()
        self.active.append(viewer)
        self.total_spawned += 1
        for hook in list(self._spawn_hooks):
            hook(viewer)
        duration = self.churn.sample_session(self._rng)
        self.sim.call_after(duration, lambda: self._depart(viewer),
                            label="viewer-depart")

    def _depart(self, viewer: object) -> None:
        if viewer not in self.active:
            return
        self.active.remove(viewer)
        self.total_departed += 1
        if self.churn.is_crash(self._rng):
            self.total_crashed += 1
            viewer.crash()
        else:
            viewer.leave()
        if self.replace_departures and not self._stopped:
            # A replacement arrives after a short think time, keeping the
            # concurrent audience hovering around the target.
            delay = self._rng.uniform(1.0, 30.0)
            self.sim.call_after(delay, self._arrive, label="viewer-arrive")
