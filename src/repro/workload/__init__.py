"""Workload generation (S10): mixes, churn, diurnal patterns, scenarios."""

from .campaign import (CampaignConfig, CampaignResult, DailyLocality,
                       run_campaign)
from .churn import ChurnModel, PopulationManager
from .diurnal import (DiurnalPattern, SECONDS_PER_DAY,
                      session_start_seconds)
from .popularity import (CategoryMix, PopulationMix, mix_for,
                         popular_channel_mix, unpopular_channel_mix)
from .scenario import (CER_PROBE, CNC_PROBE, MASON_PROBE, TELE_PROBE,
                       Deployment, ProbeResult, ProbeSpec, ScenarioConfig,
                       SessionResult, SessionScenario, run_session)
from .multichannel import (ChannelResult, ChannelSpec,
                           MultiChannelResult, MultiChannelScenario,
                           paper_channel_pair)
from .synthetic import SyntheticWorkloadModel, synthetic_category_of

__all__ = [
    "PopulationMix", "CategoryMix", "popular_channel_mix",
    "unpopular_channel_mix", "mix_for",
    "ChurnModel", "PopulationManager",
    "DiurnalPattern", "SECONDS_PER_DAY", "session_start_seconds",
    "ScenarioConfig", "SessionScenario", "SessionResult", "Deployment",
    "ProbeSpec", "ProbeResult", "run_session",
    "TELE_PROBE", "CNC_PROBE", "CER_PROBE", "MASON_PROBE",
    "CampaignConfig", "CampaignResult", "DailyLocality", "run_campaign",
    "SyntheticWorkloadModel", "synthetic_category_of",
    "MultiChannelScenario", "MultiChannelResult", "ChannelSpec",
    "ChannelResult", "paper_channel_pair",
]
