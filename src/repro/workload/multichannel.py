"""Multi-channel deployments.

PPLive broadcast 150+ channels over one bootstrap server and one set of
tracker groups, and the authors measured the popular and the unpopular
program *simultaneously*.  :class:`MultiChannelScenario` reproduces that
setup: one simulated Internet, one bootstrap, the five shared tracker
groups, and then per channel a source server, an audience, and
optionally instrumented probes — so cross-channel effects (shared
tracker registries, shared infrastructure load) are modelled rather than
assumed away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..capture.matching import match_all
from ..capture.sniffer import ProbeSniffer
from ..protocol.config import ProtocolConfig
from ..protocol.peer import PPLivePeer
from ..protocol.source import SourceServer
from ..sim.engine import Simulator
from ..streaming.chunks import ChunkGeometry
from ..streaming.video import LiveChannel, Popularity
from .churn import ChurnModel, PopulationManager
from .popularity import (PopulationMix, popular_channel_mix,
                         unpopular_channel_mix)
from .scenario import (Deployment, ProbeResult, ProbeSpec, ScenarioConfig,
                       SessionScenario, TELE_PROBE, MASON_PROBE)


@dataclass
class ChannelSpec:
    """One broadcast channel and its audience."""

    name: str
    popularity: Popularity
    mix: PopulationMix
    population: int
    probes: Tuple[ProbeSpec, ...] = ()
    geometry: ChunkGeometry = field(default_factory=ChunkGeometry)


def paper_channel_pair(popular_population: int = 60,
                       unpopular_population: int = 20,
                       include_probes: bool = True) -> List[ChannelSpec]:
    """The paper's measurement setup: one popular + one unpopular
    program, with TELE and Mason probes on each."""
    probes_popular: Tuple[ProbeSpec, ...] = ()
    probes_unpopular: Tuple[ProbeSpec, ...] = ()
    if include_probes:
        import dataclasses
        probes_popular = (
            dataclasses.replace(TELE_PROBE, name="tele-popular"),
            dataclasses.replace(MASON_PROBE, name="mason-popular"))
        probes_unpopular = (
            dataclasses.replace(TELE_PROBE, name="tele-unpopular"),
            dataclasses.replace(MASON_PROBE, name="mason-unpopular"))
    return [
        ChannelSpec(name="popular-program",
                    popularity=Popularity.POPULAR,
                    mix=popular_channel_mix(),
                    population=popular_population,
                    probes=probes_popular),
        ChannelSpec(name="unpopular-program",
                    popularity=Popularity.UNPOPULAR,
                    mix=unpopular_channel_mix(),
                    population=unpopular_population,
                    probes=probes_unpopular),
    ]


@dataclass
class ChannelResult:
    """Everything one channel produced."""

    spec: ChannelSpec
    channel: LiveChannel
    source: SourceServer
    population: PopulationManager
    probes: Dict[str, ProbeResult]


@dataclass
class MultiChannelResult:
    """The finished multi-channel world."""

    deployment: Deployment
    channels: Dict[int, ChannelResult]

    @property
    def directory(self):
        return self.deployment.internet.directory

    @property
    def infrastructure(self) -> frozenset:
        addresses = set(self.deployment.infrastructure_addresses)
        for channel in self.channels.values():
            addresses.add(channel.source.address)
        return frozenset(addresses)

    def probe(self, name: str) -> ProbeResult:
        for channel in self.channels.values():
            if name in channel.probes:
                return channel.probes[name]
        raise KeyError(f"no probe named {name!r}")

    def probe_names(self) -> List[str]:
        return [name for channel in self.channels.values()
                for name in channel.probes]


class MultiChannelScenario:
    """Runs several channels over one shared deployment."""

    def __init__(self, channels: Sequence[ChannelSpec],
                 seed: int = 7, warmup: float = 200.0,
                 duration: float = 900.0,
                 protocol: Optional[ProtocolConfig] = None,
                 churn: Optional[ChurnModel] = None,
                 source_uplink_share: float = 0.35) -> None:
        if not channels:
            raise ValueError("need at least one channel")
        self.channels = list(channels)
        self.seed = seed
        self.warmup = warmup
        self.duration = duration
        self.protocol = protocol if protocol is not None \
            else ProtocolConfig()
        self.churn = churn if churn is not None else ChurnModel()
        self.source_uplink_share = source_uplink_share

    def run(self) -> MultiChannelResult:
        sim = Simulator(seed=self.seed)
        # Build base infrastructure through the single-channel scenario
        # (bootstrap + 5 tracker groups + first channel's source) ...
        base_config = ScenarioConfig(
            seed=self.seed,
            population=self.channels[0].population,
            mix=self.channels[0].mix,
            popularity=self.channels[0].popularity,
            warmup=self.warmup, duration=self.duration,
            protocol=self.protocol, churn=self.churn,
            geometry=self.channels[0].geometry,
            source_uplink_share=self.source_uplink_share)
        base_scenario = SessionScenario(base_config)
        deployment = base_scenario.build_deployment(sim)
        internet = deployment.internet
        catalog = internet.catalog
        tele = catalog.by_name("ChinaTelecom")

        # ... then add the remaining channels to the same world.
        channel_objects: Dict[int, LiveChannel] = {
            1: deployment.channel}
        sources: Dict[int, SourceServer] = {1: deployment.source}
        for index, spec in enumerate(self.channels[1:], start=2):
            channel = LiveChannel(channel_id=index, name=spec.name,
                                  popularity=spec.popularity,
                                  geometry=spec.geometry, start_time=0.0)
            demand = spec.population * spec.geometry.bitrate_bps
            from ..network.bandwidth import AccessProfile
            source_bps = max(2.0 * spec.geometry.bitrate_bps,
                             self.source_uplink_share * demand)
            profile = AccessProfile(f"source-{index}", down_bps=source_bps,
                                    up_bps=source_bps, max_backlog=2.0)
            source = SourceServer(sim, internet.udp,
                                  internet.allocator.allocate(tele), tele,
                                  channel, self.protocol, profile=profile)
            source.go_online()
            for tracker in deployment.trackers:
                tracker.seed_peer(channel.channel_id, source.address)
            deployment.bootstrap.publish_channel(
                channel, [[t.address] for t in deployment.trackers])
            channel_objects[index] = channel
            sources[index] = source

        # Audiences and probes per channel.
        managers: Dict[int, PopulationManager] = {}
        probe_peers: Dict[int, Dict[str, PPLivePeer]] = {}
        sniffers: Dict[int, Dict[str, ProbeSniffer]] = {}
        for index, spec in enumerate(self.channels, start=1):
            channel = channel_objects[index]
            source = sources[index]
            sampling_rng = sim.random.stream(f"viewers:{index}")

            def spawn(spec=spec, channel=channel, source=source,
                      rng=sampling_rng):
                isp, profile = spec.mix.sample_viewer(catalog, rng)
                peer = PPLivePeer(
                    sim, internet.udp, internet.allocator.allocate(isp),
                    isp, profile, self.protocol, channel,
                    bootstrap_address=deployment.bootstrap.address,
                    source_address=source.address)
                peer.join()
                return peer

            manager = PopulationManager(sim, spec.population, spawn,
                                        churn=self.churn)
            manager.start()
            managers[index] = manager
            probe_peers[index] = {}
            sniffers[index] = {}

            for probe_spec in spec.probes:
                def launch(probe_spec=probe_spec, channel=channel,
                           source=source, index=index):
                    isp = catalog.by_name(probe_spec.isp_name)
                    peer = PPLivePeer(
                        sim, internet.udp,
                        internet.allocator.allocate(isp), isp,
                        probe_spec.profile, self.protocol, channel,
                        bootstrap_address=deployment.bootstrap.address,
                        source_address=source.address)
                    sniffer = ProbeSniffer(internet.udp, peer.address)
                    sniffer.start()
                    probe_peers[index][probe_spec.name] = peer
                    sniffers[index][probe_spec.name] = sniffer
                    peer.join()

                sim.call_after(self.warmup, launch, label="probe-join")

        sim.run_until(self.warmup + self.duration)

        channels: Dict[int, ChannelResult] = {}
        for index, spec in enumerate(self.channels, start=1):
            managers[index].stop()
            probes: Dict[str, ProbeResult] = {}
            for name, peer in probe_peers[index].items():
                peer.leave()
                trace = sniffers[index][name].stop()
                probes[name] = ProbeResult(
                    spec=[p for p in spec.probes if p.name == name][0],
                    peer=peer, trace=trace, report=match_all(trace))
            channels[index] = ChannelResult(
                spec=spec, channel=channel_objects[index],
                source=sources[index], population=managers[index],
                probes=probes)
        return MultiChannelResult(deployment=deployment, channels=channels)
