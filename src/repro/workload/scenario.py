"""End-to-end measurement scenarios.

A :class:`SessionScenario` reproduces one of the paper's experiment
set-ups: a PPLive-style deployment (bootstrap server, five tracker
groups in TELE/TELE/CNC/CNC/CER, a channel source in TELE), a churned
viewer population drawn from a :class:`PopulationMix`, and one or more
instrumented *probe* clients whose traffic is captured with a
:class:`ProbeSniffer` — the analogue of the authors' Wireshark hosts.

``run()`` executes: population ramp-up and warm-up, probe join, the
measured viewing window, teardown — and returns a
:class:`SessionResult` holding the traces and matched transactions per
probe, plus the directory and infrastructure addresses the analysis
layer needs.
"""

from __future__ import annotations

import sys
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..capture.matching import MatchReport, match_all
from ..capture.sniffer import ProbeSniffer
from ..capture.store import TraceStore
from ..faults import FaultInjector, FaultSchedule
from ..network.bandwidth import ADSL, CAMPUS, AccessProfile
from ..network.builder import Internet, build_internet
from ..obs import (INFO, FlowLedger, FlowSpec, HeartbeatSampler,
                   Instrumentation)
from ..obs import resolve as resolve_obs
from ..protocol.bootstrap import BootstrapServer
from ..protocol.config import ProtocolConfig
from ..protocol.peer import PPLivePeer
from ..protocol.policy import PeerSelectionPolicy, PPLiveReferralPolicy
from ..protocol.source import SourceServer
from ..protocol.tracker import TrackerServer
from ..sim.engine import Simulator
from ..streaming.chunks import ChunkGeometry
from ..streaming.video import LiveChannel, Popularity
from .churn import ChurnModel, PopulationManager
from .popularity import PopulationMix, popular_channel_mix

#: Tracker-group deployment, as reverse-engineered: all in the big
#: Chinese carriers ("PPLive does not deploy tracker servers in other
#: ISPs").
TRACKER_GROUP_ISPS = ("ChinaTelecom", "ChinaTelecom", "ChinaNetcom",
                      "ChinaNetcom", "CERNET")

#: Policy factory: given the live deployment, build a policy instance.
PolicyFactory = Callable[["Deployment"], PeerSelectionPolicy]


def _default_policy_factory(deployment: "Deployment") -> PeerSelectionPolicy:
    return PPLiveReferralPolicy()


@dataclass(frozen=True)
class ProbeSpec:
    """One instrumented client, like the paper's 8 deployed hosts."""

    name: str
    isp_name: str = "ChinaTelecom"
    profile: AccessProfile = ADSL


#: The paper's featured probes.
TELE_PROBE = ProbeSpec("tele-probe", "ChinaTelecom", ADSL)
CNC_PROBE = ProbeSpec("cnc-probe", "ChinaNetcom", ADSL)
CER_PROBE = ProbeSpec("cer-probe", "CERNET", CAMPUS)
MASON_PROBE = ProbeSpec("mason-probe", "GMU-Campus", CAMPUS)


@dataclass
class ScenarioConfig:
    """Everything needed to run one measured viewing session."""

    seed: int = 7
    #: Target concurrent audience (excluding probes).
    population: int = 120
    mix: PopulationMix = field(default_factory=popular_channel_mix)
    popularity: Popularity = Popularity.POPULAR
    probes: Tuple[ProbeSpec, ...] = (TELE_PROBE,)
    #: Seconds of swarm formation before the probes join.
    warmup: float = 240.0
    #: Probe viewing window (the paper's sessions are 2 h = 7200 s).
    duration: float = 1800.0
    churn: ChurnModel = field(default_factory=ChurnModel)
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    geometry: ChunkGeometry = field(default_factory=ChunkGeometry)
    policy_factory: PolicyFactory = _default_policy_factory
    #: Probe-side policy; defaults to the population policy.
    probe_policy_factory: Optional[PolicyFactory] = None
    replace_departures: bool = True
    #: Origin uplink provisioned as this share of aggregate stream demand
    #: (population x bitrate) — real origins serve a small fraction of a
    #: swarm, and this keeps that fraction stable across scenario sizes.
    source_uplink_share: float = 0.35
    #: Deploy ISP-aware trackers (the paper's reference [28] design)
    #: instead of PPLive's plain random-sample trackers.
    isp_aware_trackers: bool = False
    #: Observability bundle (metrics/trace/profiler); ``None`` keeps the
    #: zero-overhead no-op default and byte-identical behaviour.
    instrumentation: Optional[Instrumentation] = None
    #: Deterministic fault schedule armed onto the session (chaos runs);
    #: ``None`` injects nothing and changes nothing.
    faults: Optional[FaultSchedule] = None
    #: Traffic-flow ledger knobs; a non-``None`` spec attaches a
    #: :class:`FlowLedger` tap for the whole session.  Picklable, so
    #: ``--jobs N`` workers (which carry no instrumentation) still
    #: account flows.  ``None`` falls back to the instrumentation
    #: bundle's ``flows_spec``, and attaches nothing if that is unset —
    #: preserving the no-tap fast path.
    flows: Optional[FlowSpec] = None
    #: Experiment hook called once, right before the simulation runs:
    #: ``run_hook(sim, deployment, manager, probe_peers)``.  Used by the
    #: chaos experiment to install windowed samplers; ``probe_peers``
    #: fills in as probes join.
    run_hook: Optional[Callable] = None


@dataclass
class Deployment:
    """The wired-up infrastructure of one scenario run."""

    sim: Simulator
    internet: Internet
    channel: LiveChannel
    bootstrap: BootstrapServer
    trackers: List[TrackerServer]
    source: SourceServer

    @property
    def infrastructure_addresses(self) -> frozenset:
        addresses = {self.bootstrap.address, self.source.address}
        addresses.update(t.address for t in self.trackers)
        return frozenset(addresses)


@dataclass
class ProbeResult:
    """Capture and matching output for one probe."""

    spec: ProbeSpec
    peer: PPLivePeer
    trace: TraceStore
    report: MatchReport

    @property
    def address(self) -> str:
        return self.peer.address


@dataclass
class SessionResult:
    """Everything a session produced, ready for analysis."""

    config: ScenarioConfig
    deployment: Deployment
    probes: Dict[str, ProbeResult]
    population: PopulationManager
    #: The armed fault injector, when the config carried a schedule.
    injector: Optional[FaultInjector] = None
    #: The finished traffic-flow ledger, when a flow spec was active.
    flows: Optional[FlowLedger] = None

    @property
    def directory(self):
        return self.deployment.internet.directory

    @property
    def infrastructure(self) -> frozenset:
        return self.deployment.infrastructure_addresses

    def probe(self, name: Optional[str] = None) -> ProbeResult:
        """The named probe's results (or the only probe's)."""
        if name is None:
            if len(self.probes) != 1:
                raise ValueError(
                    f"session has {len(self.probes)} probes; name one of "
                    f"{sorted(self.probes)}")
            return next(iter(self.probes.values()))
        return self.probes[name]


class SessionScenario:
    """Builds and runs one measured viewing session."""

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self.config = config if config is not None else ScenarioConfig()

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def build_deployment(self, sim: Simulator) -> Deployment:
        cfg = self.config
        internet = build_internet(sim, obs=cfg.instrumentation)
        catalog = internet.catalog
        allocator = internet.allocator

        channel = LiveChannel(channel_id=1,
                              name=f"{cfg.mix.name}-program",
                              popularity=cfg.popularity,
                              geometry=cfg.geometry,
                              start_time=0.0)

        tele = catalog.by_name("ChinaTelecom")
        bootstrap = BootstrapServer(sim, internet.udp,
                                    allocator.allocate(tele), tele)
        bootstrap.go_online()

        trackers: List[TrackerServer] = []
        for group_id, isp_name in enumerate(TRACKER_GROUP_ISPS):
            isp = catalog.by_name(isp_name)
            if cfg.isp_aware_trackers:
                from ..baselines.isp_tracker import IspAwareTrackerServer
                tracker = IspAwareTrackerServer(
                    sim, internet.udp, allocator.allocate(isp), isp,
                    cfg.protocol, internet.directory, group_id=group_id)
            else:
                tracker = TrackerServer(sim, internet.udp,
                                        allocator.allocate(isp), isp,
                                        cfg.protocol, group_id=group_id)
            tracker.go_online()
            trackers.append(tracker)

        demand_bps = cfg.population * cfg.geometry.bitrate_bps
        source_bps = max(2.0 * cfg.geometry.bitrate_bps,
                         cfg.source_uplink_share * demand_bps)
        source_profile = AccessProfile("source", down_bps=source_bps,
                                       up_bps=source_bps, max_backlog=2.0)
        source = SourceServer(sim, internet.udp, allocator.allocate(tele),
                              tele, channel, cfg.protocol,
                              profile=source_profile)
        source.go_online()
        for tracker in trackers:
            tracker.seed_peer(channel.channel_id, source.address)

        bootstrap.publish_channel(channel, [[t.address] for t in trackers])
        return Deployment(sim=sim, internet=internet, channel=channel,
                          bootstrap=bootstrap, trackers=trackers,
                          source=source)

    # ------------------------------------------------------------------
    # Viewers
    # ------------------------------------------------------------------
    def _make_viewer(self, deployment: Deployment,
                     policy: PeerSelectionPolicy) -> PPLivePeer:
        cfg = self.config
        internet = deployment.internet
        rng = deployment.sim.random.stream("viewer-sampling")
        isp, profile = cfg.mix.sample_viewer(internet.catalog, rng)
        address = internet.allocator.allocate(isp)
        peer = PPLivePeer(
            deployment.sim, internet.udp, address, isp, profile,
            cfg.protocol, deployment.channel,
            bootstrap_address=deployment.bootstrap.address,
            policy=policy, source_address=deployment.source.address,
            obs=cfg.instrumentation)
        peer.join()
        return peer

    def _make_probe(self, deployment: Deployment,
                    spec: ProbeSpec) -> PPLivePeer:
        cfg = self.config
        internet = deployment.internet
        isp = internet.catalog.by_name(spec.isp_name)
        address = internet.allocator.allocate(isp)
        factory = cfg.probe_policy_factory or cfg.policy_factory
        return PPLivePeer(
            deployment.sim, internet.udp, address, isp, spec.profile,
            cfg.protocol, deployment.channel,
            bootstrap_address=deployment.bootstrap.address,
            policy=factory(deployment),
            source_address=deployment.source.address,
            obs=cfg.instrumentation)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _install_heartbeat(self, obs: Instrumentation, sim: Simulator,
                           deployment: Deployment,
                           manager: "PopulationManager",
                           probe_peers: Dict[str, PPLivePeer],
                           injector: Optional[FaultInjector] = None,
                           sim_end: Optional[float] = None,
                           ledger: Optional[FlowLedger] = None
                           ) -> HeartbeatSampler:
        """Periodic progress beacon: swarm size, neighbor fill, uplink
        backlog and playback health, as trace records, gauges and
        (optionally) stderr progress lines.  ``sim_end`` and the per-ISP
        peer census ride along so the progress bus can extrapolate an
        ETA and ``repro top`` can show swarm composition."""
        cfg = self.config
        udp = deployment.internet.udp
        metrics = obs.metrics
        g_viewers = metrics.gauge("workload.active_viewers")
        g_online = metrics.gauge("net.online_hosts")
        # Pre-resolved per-probe handles: no per-sample name lookups.
        g_fill = metrics.gauge_family("proto.neighbor_fill", "probe")
        g_backlog = metrics.gauge_family("net.uplink_backlog_seconds_last",
                                         "probe")
        g_continuity = metrics.gauge_family("streaming.continuity_index",
                                            "probe")
        g_lead = metrics.gauge_family("streaming.buffer_lead_chunks",
                                      "probe")

        def sample(now: float) -> dict:
            fields = {"viewers": manager.active_count,
                      "online_hosts": udp.online_count}
            if sim_end is not None:
                fields["sim_end"] = sim_end
            fields["peers_by_isp"] = udp.online_by_isp()
            if injector is not None:
                fields["faults_active"] = len(injector.active)
            if ledger is not None:
                fields["flows"] = ledger.heartbeat_fields()
            g_viewers.set(manager.active_count)
            g_online.set(udp.online_count)
            neighbor_fill = []
            for name, peer in sorted(probe_peers.items()):
                neighbors = len(peer.neighbors)
                neighbor_fill.append(
                    f"{neighbors}/{cfg.protocol.max_neighbors}")
                g_fill.labeled(name).set(neighbors)
                backlog = peer.uplink.backlog(now)
                g_backlog.labeled(name).set(round(backlog, 6))
                if peer.player is not None:
                    continuity = peer.player.continuity_index
                    g_continuity.labeled(name).set(round(continuity, 6))
                    g_lead.labeled(name).set(
                        peer.have_until - peer.player.playout_chunk)
                    fields[f"{name}.continuity"] = round(continuity, 3)
            if neighbor_fill:
                fields["probe_neighbors"] = ",".join(neighbor_fill)
            return fields

        stream = None
        if obs.progress:
            stream = obs.progress_stream if obs.progress_stream is not None \
                else sys.stderr
        return HeartbeatSampler(sim, obs, sample,
                                interval=obs.heartbeat_interval,
                                label=f"session seed={cfg.seed}",
                                stream=stream)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> SessionResult:
        cfg = self.config
        obs = resolve_obs(cfg.instrumentation)
        profiler = obs.profiler

        def phase(name: str):
            # Phase clocks feed the attribution report; without a
            # profiler they cost nothing.
            return (profiler.phase(name) if profiler is not None
                    else nullcontext())

        sim = Simulator(seed=cfg.seed, profiler=profiler)
        end_time = cfg.warmup + cfg.duration
        flow_spec = cfg.flows if cfg.flows is not None else (
            obs.flows_spec if obs.enabled else None)
        with phase("setup"):
            deployment = self.build_deployment(sim)
            ledger = None
            if flow_spec is not None:
                ledger = FlowLedger(deployment.internet.directory,
                                    deployment.internet.catalog, flow_spec)
                deployment.internet.udp.set_flow_sink(ledger.sink)
            if obs.trace.enabled_for(INFO):
                obs.trace.emit(sim.now, INFO, "session_start",
                               seed=cfg.seed,
                               population=cfg.population,
                               popularity=cfg.popularity.value,
                               warmup=cfg.warmup, duration=cfg.duration,
                               probes=[spec.name for spec in cfg.probes])
            session_span = None
            if obs.spans.enabled:
                session_span = obs.spans.start_span(
                    "session", "workload", sim.now, actor="session",
                    seed=cfg.seed, population=cfg.population,
                    popularity=cfg.popularity.value)

            population_policy = cfg.policy_factory(deployment)
            manager = PopulationManager(
                sim, cfg.population,
                spawn_viewer=lambda: self._make_viewer(deployment,
                                                       population_policy),
                churn=cfg.churn,
                replace_departures=cfg.replace_departures)
            manager.start()

            injector = None
            if cfg.faults is not None and len(cfg.faults):
                injector = FaultInjector(
                    sim, cfg.faults,
                    network=deployment.internet.udp,
                    latency=deployment.internet.latency,
                    bootstrap=deployment.bootstrap,
                    trackers=deployment.trackers,
                    source=deployment.source,
                    population=manager,
                    master_seed=cfg.seed,
                    obs=cfg.instrumentation,
                    flow_ledger=ledger)
                injector.arm()

            # Probes join after the warm-up, with sniffers already
            # attached so the very first bootstrap packets are captured,
            # as with Wireshark.
            probe_peers: Dict[str, PPLivePeer] = {}
            sniffers: Dict[str, ProbeSniffer] = {}

            def launch_probe(spec: ProbeSpec) -> None:
                peer = self._make_probe(deployment, spec)
                sniffer = ProbeSniffer(deployment.internet.udp,
                                       peer.address)
                sniffer.start()
                probe_peers[spec.name] = peer
                sniffers[spec.name] = sniffer
                peer.join()

            for spec in cfg.probes:
                sim.call_after(cfg.warmup,
                               lambda s=spec: launch_probe(s),
                               label="probe-join")

            heartbeat = None
            if obs.wants_heartbeat:
                heartbeat = self._install_heartbeat(
                    obs, sim, deployment, manager, probe_peers,
                    injector=injector, sim_end=end_time, ledger=ledger)

            if cfg.run_hook is not None:
                cfg.run_hook(sim, deployment, manager, probe_peers)

        with phase("sim"):
            sim.run_until(end_time)

        if heartbeat is not None:
            heartbeat.stop()
        if ledger is not None:
            deployment.internet.udp.clear_flow_sink()
            ledger.finish(sim.now)
        with phase("analysis"):
            if obs.enabled:
                obs.metrics.counter("sim.events_executed").inc(
                    sim.events_executed)
                obs.metrics.counter("sim.sessions_run").inc()
                obs.finalize()
            manager.stop()
            probes: Dict[str, ProbeResult] = {}
            for spec in cfg.probes:
                peer = probe_peers[spec.name]
                peer.leave()
                trace = sniffers[spec.name].stop()
                probes[spec.name] = ProbeResult(
                    spec=spec, peer=peer, trace=trace,
                    report=match_all(trace))
        if obs.trace.enabled_for(INFO):
            obs.trace.emit(sim.now, INFO, "session_end", seed=cfg.seed,
                           events_executed=sim.events_executed,
                           viewers_spawned=manager.total_spawned,
                           viewers_departed=manager.total_departed)
        if session_span is not None:
            session_span.finish(sim.now,
                                events_executed=sim.events_executed,
                                viewers_spawned=manager.total_spawned)
        return SessionResult(config=cfg, deployment=deployment,
                             probes=probes, population=manager,
                             injector=injector, flows=ledger)


def run_session(config: Optional[ScenarioConfig] = None) -> SessionResult:
    """Convenience one-call session runner."""
    return SessionScenario(config).run()
