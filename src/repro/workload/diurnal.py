"""Diurnal viewing pattern.

The paper measured "during peak and non-peak hours"; its 2-hour featured
session starts at 8:30 PM, "the peak time for PPLive users in China"
(per Hei et al.).  The diurnal model scales a channel's nominal audience
by the time of day, peaking in the evening and bottoming out in the
early morning, so campaign experiments can place sessions realistically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

SECONDS_PER_DAY = 86_400.0
#: Peak viewing time: 20:30 local (in seconds from midnight).
PEAK_SECONDS = 20.5 * 3600.0
#: Quietest time: around 05:00.
TROUGH_SECONDS = 5.0 * 3600.0


@dataclass(frozen=True)
class DiurnalPattern:
    """Smooth day-cycle multiplier for audience size.

    ``factor`` follows a raised cosine between ``trough_level`` (at ~5 AM)
    and 1.0 (at ~8:30 PM).  A weekly modulation can be layered on top for
    weekend bumps.
    """

    trough_level: float = 0.25
    weekend_boost: float = 1.15

    def __post_init__(self) -> None:
        if not 0 < self.trough_level <= 1:
            raise ValueError("trough_level must be in (0, 1]")
        if self.weekend_boost < 1:
            raise ValueError("weekend_boost must be >= 1")

    def factor(self, time_seconds: float) -> float:
        """Audience multiplier in (0, weekend_boost] at absolute time.

        ``time_seconds`` is seconds since the campaign epoch (day 0,
        midnight); day 0 is taken to be a Saturday, matching the paper's
        Oct 11 2008 start date.
        """
        seconds_of_day = time_seconds % SECONDS_PER_DAY
        phase = 2.0 * math.pi * (seconds_of_day - PEAK_SECONDS) / SECONDS_PER_DAY
        # cos(0) = 1 at the peak; scale into [trough_level, 1].
        base = (self.trough_level
                + (1.0 - self.trough_level) * (1.0 + math.cos(phase)) / 2.0)
        if self.is_weekend(time_seconds):
            base = min(base * self.weekend_boost, self.weekend_boost)
        return base

    @staticmethod
    def day_index(time_seconds: float) -> int:
        """Day number since the campaign epoch (0-based)."""
        return int(time_seconds // SECONDS_PER_DAY)

    @classmethod
    def is_weekend(cls, time_seconds: float) -> bool:
        """Day 0 = Saturday 2008-10-11, so days 0,1,7,8,... are weekends."""
        return cls.day_index(time_seconds) % 7 in (0, 1)


def session_start_seconds(day: int, hour: float = 20.5) -> float:
    """Campaign-relative start time for a session on ``day`` at ``hour``."""
    if day < 0:
        raise ValueError("day must be >= 0")
    if not 0 <= hour < 24:
        raise ValueError("hour must be in [0, 24)")
    return day * SECONDS_PER_DAY + hour * 3600.0
