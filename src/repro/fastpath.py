"""Fast-path vs reference-path gating for the simulator hot paths.

The scheduler and the transport each carry two implementations of their
hot loops: an optimised *fast path* (incrementally maintained scheduler
state, cohort-batched datagram dispatch) and the straightforward
*reference path* the fast path must reproduce byte for byte.  Both are
kept alive on purpose — the reference path is the executable
specification the equivalence tests pin the fast path against, and the
escape hatch when a determinism bug needs bisecting.

Two environment variables control the choice:

``REPRO_REFERENCE_PATH``
    Any value other than empty/``0`` forces the unbatched reference
    dispatch and full-rebuild scheduler paths everywhere.  Golden
    digests are identical either way; only wall-clock time differs.

``REPRO_FASTPATH_VERIFY``
    Debug cross-checking: the fast paths recompute their incremental
    state from scratch and assert agreement on every use.  Slower than
    either path alone; meant for tests and bug hunts, never production
    runs.

Both variables are sampled at *object construction time* (network,
scheduler), not per call: a test that sets the variable and builds a
fresh simulation gets the requested path, while an already-running
simulation never flips mid-flight.  Worker processes spawned by
``--jobs N`` inherit the parent's environment, so a reference-path run
stays reference-path at every parallelism level.
"""

from __future__ import annotations

import os

REFERENCE_ENV = "REPRO_REFERENCE_PATH"
VERIFY_ENV = "REPRO_FASTPATH_VERIFY"


def _truthy(value) -> bool:
    return value is not None and value != "" and value != "0"


def reference_path_enabled() -> bool:
    """Whether new components must use the unbatched reference paths."""
    return _truthy(os.environ.get(REFERENCE_ENV))


def fastpath_verify_enabled() -> bool:
    """Whether fast paths must assert against a from-scratch rebuild."""
    return _truthy(os.environ.get(VERIFY_ENV))
