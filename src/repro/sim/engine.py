"""The discrete-event simulation engine.

:class:`Simulator` owns the clock, the pending-event queue, and the master
random-number router.  Model components schedule callbacks with
:meth:`call_at` / :meth:`call_after`, create repeating timers with
:meth:`every`, and read the current time from :attr:`now`.  Hot-path
components that never cancel their events use :meth:`post`, which
recycles pooled :class:`Event` objects and skips handle bookkeeping.

The engine is single-threaded and deterministic: with the same seed and
the same model code, two runs produce byte-identical traces.  The run
loops in :meth:`run_until` / :meth:`run` reach into the queue's heap
directly — one heap access per executed event instead of a
``peek_time()`` + ``pop()`` pair — and bind hot attributes to locals;
both are pure mechanics and cannot change event order, which is fixed by
the ``(time, seq)`` heap order alone.
"""

from __future__ import annotations

import math
from heapq import heappop
from time import perf_counter
from typing import Any, Callable, Optional

from .clock import Clock
from .errors import EngineStoppedError, SchedulingError
from .events import _NO_ARG, Event, EventQueue
from .random import RandomRouter


class Timer:
    """A repeating timer created by :meth:`Simulator.every`.

    The callback may call :meth:`stop` (or the engine may stop) to end the
    series.  ``jitter_fn``, when provided, is called before each rearm and
    its return value is added to the period — used by protocol code to
    de-synchronise gossip rounds across peers.
    """

    __slots__ = ("_sim", "_period", "_callback", "_jitter_fn",
                 "_label", "_event", "_stopped")

    def __init__(self, sim: "Simulator", period: float,
                 callback: Callable[[], Any],
                 jitter_fn: Optional[Callable[[], float]] = None,
                 label: str = "timer") -> None:
        if period <= 0:
            raise SchedulingError(f"timer period must be positive: {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._jitter_fn = jitter_fn
        self._label = label
        self._event: Optional[Event] = None
        self._stopped = False
        self._arm()

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Cancel the timer; the callback will not fire again."""
        self._stopped = True
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _arm(self) -> None:
        delay = self._period
        if self._jitter_fn is not None:
            delay = max(1e-9, delay + self._jitter_fn())
        self._event = self._sim.call_after(delay, self._fire,
                                           label=self._label)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._arm()


class Simulator:
    """Deterministic single-threaded discrete-event simulator."""

    def __init__(self, seed: int = 0, start_time: float = 0.0,
                 profiler: Optional[Any] = None) -> None:
        self.clock = Clock(start_time)
        self.queue = EventQueue()
        self.random = RandomRouter(seed)
        self.seed = seed
        self._running = False
        self._stopped = False
        self.events_executed = 0
        #: Optional :class:`repro.obs.EngineProfiler`; when set, every
        #: executed event is wall-clock-accounted under its label.
        self.profiler = profiler

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[[], Any],
                label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if self._stopped:
            raise EngineStoppedError("cannot schedule on a stopped engine")
        if time < self.clock._now:
            raise SchedulingError(
                f"cannot schedule at {time:.6f}, now is {self.now:.6f}")
        return self.queue.schedule(time, callback, label)

    def call_after(self, delay: float, callback: Callable[[], Any],
                   label: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` seconds (>= 0)."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.call_at(self.clock._now + delay, callback, label)

    def post(self, time: float, callback: Callable[..., Any],
             arg: Any = _NO_ARG, label: str = "") -> None:
        """Schedule a fire-and-forget callback at absolute ``time``.

        The pooled counterpart of :meth:`call_at`: no :class:`Event`
        handle is returned, so the event cannot be cancelled, and the
        queue recycles the Event object after it fires.  ``arg``, when
        given, is passed positionally to ``callback`` — hot paths use it
        instead of allocating a closure per scheduled call.
        """
        if self._stopped:
            raise EngineStoppedError("cannot schedule on a stopped engine")
        if time < self.clock._now:
            raise SchedulingError(
                f"cannot schedule at {time:.6f}, now is {self.now:.6f}")
        self.queue.schedule_pooled(time, callback, arg, label)

    def every(self, period: float, callback: Callable[[], Any],
              jitter_fn: Optional[Callable[[], float]] = None,
              label: str = "timer") -> Timer:
        """Create a repeating :class:`Timer` firing every ``period`` seconds.

        ``label`` tags the timer's events for the profiler's
        per-subsystem time attribution (``repro.obs.attribution``); it
        never affects event order.
        """
        return Timer(self, period, callback, jitter_fn, label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        """Invoke one popped live event and retire it.

        The single definition of dispatch semantics, shared by
        :meth:`step`, :meth:`run_until` and :meth:`run`: profiler
        accounting around the callback, the ``arg is _NO_ARG`` calling
        convention, recycling for pooled events, and consumed-marking
        for handle events (so a later ``cancel()`` of a fired handle —
        a Timer stopping itself from its own callback, a timeout
        cleared after it fired — does not decrement the live count
        again).  The caller has already popped the event, advanced the
        clock and counted it in ``events_executed``.
        """
        callback = event.callback
        arg = event.arg
        if callback is not None:
            profiler = self.profiler
            if profiler is None:
                if arg is _NO_ARG:
                    callback()
                else:
                    callback(arg)
            else:
                started = perf_counter()
                if arg is _NO_ARG:
                    callback()
                else:
                    callback(arg)
                profiler.record(event.label, perf_counter() - started)
        if event.poolable:
            self.queue.recycle(event)
        else:
            event.cancel()

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self.events_executed += 1
        self._dispatch(event)
        return True

    def run_until(self, end_time: float,
                  max_events: Optional[int] = None) -> int:
        """Run events with timestamps <= ``end_time``.

        Returns the number of events executed.  The clock is left at
        ``end_time`` when the window completes — even if the queue
        drained earlier — so back-to-back ``run_until`` calls observe
        contiguous time.  If the ``max_events`` bound stops the run
        while events due before ``end_time`` are still queued, the
        clock stays at the last executed event so those events are not
        silently skipped over.
        """
        clock = self.clock
        if end_time < clock._now:
            raise SchedulingError(
                f"end_time {end_time:.6f} is before now {self.now:.6f}")
        executed = 0
        self._running = True
        # The queue mutates its heap strictly in place (push/compact/
        # clear), so holding a local alias across callbacks is safe.
        queue = self.queue
        heap = queue._heap
        dispatch = self._dispatch
        pop = heappop
        bound = math.inf if max_events is None else max_events
        try:
            while heap:
                if executed >= bound:
                    break
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    pop(heap)
                    queue._dead -= 1
                    continue
                time = entry[0]
                if time > end_time:
                    break
                pop(heap)
                queue._live -= 1
                # Heap order makes `time` non-decreasing; write the clock
                # directly instead of re-checking monotonicity per event.
                clock._now = time
                self.events_executed += 1
                dispatch(event)
                executed += 1
        finally:
            self._running = False
        next_time = queue.peek_time()
        if next_time is None or next_time > end_time:
            clock.advance_to(end_time)
        return executed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue is empty (or ``max_events`` is reached)."""
        executed = 0
        self._running = True
        clock = self.clock
        queue = self.queue
        heap = queue._heap
        dispatch = self._dispatch
        pop = heappop
        bound = math.inf if max_events is None else max_events
        try:
            while heap:
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    pop(heap)
                    queue._dead -= 1
                    continue
                pop(heap)
                queue._live -= 1
                clock._now = entry[0]
                self.events_executed += 1
                dispatch(event)
                executed += 1
                if executed >= bound:
                    break
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Permanently stop the engine and drop all pending events."""
        self._stopped = True
        self.queue.clear()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot of the engine: clock, event counter,
        queue contents and the RNG router's stream states.

        Restoring it (:meth:`restore_state`) yields an engine that
        executes the exact same future event sequence — same order,
        same sequence numbers, same random draws — as the snapshotted
        one.  Callbacks are captured by reference (see
        ``EventQueue.snapshot_state`` for the picklability contract).
        """
        return {
            "now": self.clock._now,
            "events_executed": self.events_executed,
            "seed": self.seed,
            "stopped": self._stopped,
            "queue": self.queue.snapshot_state(),
            "random": self.random.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild this engine in place from :meth:`snapshot_state`."""
        self.clock._now = state["now"]
        self.events_executed = state["events_executed"]
        self.seed = state["seed"]
        self._stopped = state["stopped"]
        self._running = False
        self.queue.restore_state(state["queue"])
        self.random.restore_state(state["random"])

    @property
    def stopped(self) -> bool:
        return self._stopped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self.now:.3f} pending={len(self.queue)} "
                f"executed={self.events_executed}>")
