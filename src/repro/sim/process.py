"""Generator-based simulation processes.

Callback scheduling is enough for most of the protocol code, but some
behaviours (session scripts in the workload generator, multi-step probe
scenarios) read far more naturally as sequential coroutines::

    def session(env):
        yield Sleep(5.0)        # join after five seconds
        peer.start()
        yield Sleep(7200.0)     # watch for two hours
        peer.leave()

    spawn(sim, session)

A process is a generator that yields :class:`Sleep` commands (or bare
floats, treated as sleep durations).  ``spawn`` drives it on the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Union

from .engine import Simulator
from .errors import ProcessError


@dataclass(frozen=True)
class Sleep:
    """Suspend the process for ``duration`` simulated seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ProcessError(f"negative sleep: {self.duration}")


Command = Union[Sleep, float, int]
ProcessGenerator = Generator[Command, None, None]


class Process:
    """Handle for a spawned process; supports cancellation and completion."""

    def __init__(self, sim: Simulator, generator: ProcessGenerator,
                 name: str = "") -> None:
        self._sim = sim
        self._generator = generator
        self.name = name
        self.finished = False
        self.cancelled = False
        self.error: Optional[BaseException] = None
        self._pending_event: Any = None

    @property
    def alive(self) -> bool:
        return not (self.finished or self.cancelled)

    def cancel(self) -> None:
        """Stop the process; its generator is closed immediately."""
        if not self.alive:
            return
        self.cancelled = True
        if self._pending_event is not None:
            self._sim.cancel(self._pending_event)
            self._pending_event = None
        self._generator.close()

    def _advance(self) -> None:
        self._pending_event = None
        if not self.alive:
            return
        try:
            command = next(self._generator)
        except StopIteration:
            self.finished = True
            return
        except BaseException as exc:
            self.finished = True
            self.error = exc
            raise
        self._schedule(command)

    def _schedule(self, command: Command) -> None:
        if isinstance(command, (int, float)):
            command = Sleep(float(command))
        if not isinstance(command, Sleep):
            raise ProcessError(
                f"process {self.name!r} yielded unsupported {command!r}")
        self._pending_event = self._sim.call_after(
            command.duration, self._advance, label=f"process:{self.name}")


def spawn(sim: Simulator,
          fn: Callable[..., ProcessGenerator],
          *args: Any,
          name: str = "",
          delay: float = 0.0,
          **kwargs: Any) -> Process:
    """Start ``fn(*args, **kwargs)`` as a process after ``delay`` seconds."""
    generator = fn(*args, **kwargs)
    process = Process(sim, generator, name or getattr(fn, "__name__", ""))
    sim.call_after(delay, process._advance, label=f"spawn:{process.name}")
    return process
