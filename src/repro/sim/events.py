"""Event objects and the pending-event queue.

The queue is a binary heap ordered by ``(time, sequence)``.  The sequence
number is a global monotonic counter, which gives two guarantees that the
rest of the simulator relies on:

* events at the same timestamp fire in the order they were scheduled
  (FIFO tie-breaking), and
* the execution order is fully deterministic for a fixed seed, because it
  never depends on object identity or hash ordering.

Events can be cancelled in O(1); cancelled entries are skipped lazily when
popped, which is the standard "tombstone" technique from the ``heapq``
documentation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Instances are handed back from :meth:`EventQueue.schedule` so callers
    can cancel the event later.  ``callback`` is invoked with no arguments
    when the event fires.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], Any], label: str = "") -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], Any]] = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True
        # Drop the reference so cancelled events do not pin closures (and
        # everything they capture) in memory until they surface in the heap.
        self.callback = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        label = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.6f} seq={self.seq} {state}{label}>"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(self, time: float, callback: Callable[[], Any],
                 label: str = "") -> Event:
        """Enqueue ``callback`` to fire at absolute ``time``."""
        event = Event(time, next(self._counter), callback, label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it has not fired yet."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
