"""Event objects and the pending-event queue.

The queue is a binary heap ordered by ``(time, sequence)``.  The sequence
number is a global monotonic counter, which gives two guarantees that the
rest of the simulator relies on:

* events at the same timestamp fire in the order they were scheduled
  (FIFO tie-breaking), and
* the execution order is fully deterministic for a fixed seed, because it
  never depends on object identity or hash ordering.

Heap entries are ``(time, seq, event)`` tuples rather than bare
:class:`Event` objects so that sift-up/sift-down comparisons stay at the
C level (tuple comparison) instead of calling a Python ``__lt__`` per
swap — on a datagram-heavy session that removes millions of interpreter
round-trips.  ``seq`` is unique, so the comparison never reaches the
third element and events never compare against each other.

Events can be cancelled in O(1); cancelled entries are skipped lazily
when popped, which is the standard "tombstone" technique from the
``heapq`` documentation.  Unlike the textbook version, the queue counts
its tombstones and compacts the heap in place once they outnumber the
live entries — a workload that schedules and cancels many timers (churn,
request timeouts) no longer grows the heap without bound.

Fire-and-forget events — the per-datagram delivery callbacks that
dominate a session — go through :meth:`EventQueue.schedule_pooled`,
which recycles :class:`Event` objects on a free-list and never hands the
instance to the caller, so recycling cannot invalidate a handle someone
still holds.  Pooled events also carry a single positional ``arg`` for
their callback, which lets the transport layer schedule deliveries
without allocating a closure per datagram.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class _NoArg:
    """Sentinel: the event's callback takes no argument."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NO_ARG>"

    def __reduce__(self):
        # The engine dispatches on ``arg is _NO_ARG`` identity, so a
        # snapshot that crosses a process boundary must unpickle back
        # to the module singleton, not a fresh instance.
        return (_restore_no_arg, ())


def _restore_no_arg() -> "_NoArg":
    return _NO_ARG


#: Shared sentinel distinguishing "no argument" from "argument is None".
_NO_ARG = _NoArg()

#: Compact the heap when tombstones outnumber live entries *and* the heap
#: is at least this long — tiny heaps are not worth the heapify.
_COMPACT_MIN = 64

#: Upper bound on the free-list, so a burst of in-flight datagrams does
#: not pin an arbitrarily large pile of dead Event objects.
_POOL_MAX = 4096


class Event:
    """A scheduled callback.

    Instances are handed back from :meth:`EventQueue.schedule` so callers
    can cancel the event later.  ``callback`` is invoked when the event
    fires — with no arguments, unless ``arg`` is set (pooled fast path),
    in which case it is invoked as ``callback(arg)``.
    """

    __slots__ = ("time", "seq", "callback", "arg", "cancelled", "label",
                 "poolable")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], label: str = "") -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., Any]] = callback
        self.arg: Any = _NO_ARG
        self.cancelled = False
        self.label = label
        self.poolable = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True
        # Drop the references so cancelled events do not pin closures (and
        # everything they capture) in memory until they surface in the heap.
        self.callback = None
        self.arg = _NO_ARG

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        label = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.6f} seq={self.seq} {state}{label}>"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        # Entries are (time, seq, Event); engine fast loops reach into
        # this list directly, so mutation must always be in place (the
        # list object is never rebound after construction).
        self._heap: list = []
        # A plain int, not itertools.count(): the sequence counter is
        # part of the deterministic execution order, so it must be
        # snapshot-serializable (a resumed queue continues the exact
        # FIFO tie-breaking the killed run would have used).
        self._seq = 0
        self._live = 0
        self._dead = 0
        self._pool: list = []

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(self, time: float, callback: Callable[[], Any],
                 label: str = "") -> Event:
        """Enqueue ``callback`` to fire at absolute ``time``."""
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, label)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def schedule_pooled(self, time: float, callback: Callable[..., Any],
                        arg: Any = _NO_ARG, label: str = "") -> None:
        """Enqueue a fire-and-forget event, recycling pooled instances.

        No handle is returned — pooled events cannot be cancelled, which
        is exactly what makes recycling safe.  ``arg``, when given, is
        passed positionally to ``callback`` at fire time.
        """
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.arg = arg
            event.cancelled = False
            event.label = label
        else:
            event = Event(time, seq, callback, label)
            event.arg = arg
            event.poolable = True
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1

    def recycle(self, event: Event) -> None:
        """Return a fired pooled event to the free-list."""
        event.callback = None
        event.arg = _NO_ARG
        pool = self._pool
        if len(pool) < _POOL_MAX:
            pool.append(event)

    def cancel(self, event: Event) -> None:
        """Cancel ``event`` if it has not fired yet."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1
            self._dead += 1
            if self._dead > self._live and len(self._heap) >= _COMPACT_MIN:
                self.compact()

    def compact(self) -> None:
        """Rebuild the heap without tombstones, in place.

        ``(time, seq)`` is a total order over entries, so re-heapifying
        the surviving tuples preserves the exact pop order.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._dead = 0

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        entry = heapq.heappop(self._heap)
        self._live -= 1
        return entry[2]

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
        self._dead = 0

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._dead -= 1

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot of the queue: heap entries, counters,
        free-list size.

        Callbacks and args are captured as-is; whether the snapshot can
        cross a process boundary therefore depends on *them* being
        picklable (bound methods of picklable model objects, or
        module-level functions).  ``restore_state`` of this snapshot
        reproduces the exact pop order, sequence numbering and pooling
        behaviour of the original queue — the round-trip is a fixed
        point (see ``tests/test_snapshot_properties.py``).
        """
        return {
            "entries": [
                (event.time, event.seq, event.callback, event.arg,
                 event.label, event.poolable, event.cancelled)
                for _time, _seq, event in self._heap],
            "next_seq": self._seq,
            "pool_size": len(self._pool),
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild this queue in place from :meth:`snapshot_state`."""
        heap = []
        live = 0
        dead = 0
        for time, seq, callback, arg, label, poolable, cancelled \
                in state["entries"]:
            event = Event(time, seq, callback, label)
            event.arg = arg
            event.poolable = poolable
            if cancelled:
                # Re-cancel through the same path the live queue used,
                # so callback/arg are dropped identically.
                event.cancel()
                dead += 1
            else:
                live += 1
            heap.append((time, seq, event))
        heapq.heapify(heap)
        # In-place: engine fast loops may hold an alias to the list.
        self._heap[:] = heap
        self._seq = state["next_seq"]
        self._live = live
        self._dead = dead
        pool_size = min(state["pool_size"], _POOL_MAX)
        pool = []
        for _ in range(pool_size):
            blank = Event(0.0, 0, _blank_callback)
            blank.callback = None
            blank.poolable = True
            pool.append(blank)
        self._pool[:] = pool


def _blank_callback() -> None:  # pragma: no cover - never fires
    """Placeholder for rebuilt free-list events (immediately cleared)."""
