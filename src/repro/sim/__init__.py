"""Discrete-event simulation engine (substrate S1).

Public surface:

* :class:`Simulator` — event loop, clock, scheduling, timers.
* :class:`Timer` — repeating timer with optional per-round jitter.
* :class:`RandomRouter` — deterministic named RNG substreams.
* :func:`spawn` / :class:`Sleep` — generator-based sequential processes.
"""

from .clock import Clock
from .engine import Simulator, Timer
from .errors import (EngineStoppedError, ProcessError, SchedulingError,
                     SimulationError)
from .events import Event, EventQueue
from .process import Process, ProcessGenerator, Sleep, spawn
from .random import (RandomRouter, bounded_normal, derive_seed, exponential,
                     lognormal_from_median, pareto,
                     sample_without_replacement, shuffled, weighted_choice)

__all__ = [
    "Clock",
    "Simulator",
    "Timer",
    "SimulationError",
    "SchedulingError",
    "EngineStoppedError",
    "ProcessError",
    "Event",
    "EventQueue",
    "Process",
    "ProcessGenerator",
    "Sleep",
    "spawn",
    "RandomRouter",
    "derive_seed",
    "exponential",
    "bounded_normal",
    "pareto",
    "lognormal_from_median",
    "weighted_choice",
    "sample_without_replacement",
    "shuffled",
]
