"""Deterministic, named random-number substreams.

Distributed-systems simulations become irreproducible the moment two model
components share one RNG: adding a call in component A perturbs every draw
in component B.  :class:`RandomRouter` avoids that by deriving an
independent ``random.Random`` stream per *name* from a single master seed,
so the latency model, churn model, and protocol decisions each consume
their own sequence.

The derivation is stable across runs and Python versions: the substream
seed is ``sha256(master_seed || name)`` truncated to 64 bits.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Iterator, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for substream ``name``."""
    payload = f"{master_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RandomRouter:
    """Factory and cache of named :class:`random.Random` substreams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomRouter":
        """Return a child router whose master seed depends on ``name``.

        Useful to give each simulated node its own namespace of streams.
        """
        return RandomRouter(derive_seed(self.master_seed, name))

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot: master seed plus every materialised
        substream's exact Mersenne-Twister state.

        A restored router continues every stream mid-sequence — the
        next draw from each named stream equals the draw the original
        would have produced.  Forked child routers are *not* captured:
        a fork derives from the master seed alone, so rebuilding one is
        free and stateless.
        """
        return {"master_seed": self.master_seed,
                "streams": {name: rng.getstate()
                            for name, rng in self._streams.items()}}

    def restore_state(self, state: dict) -> None:
        """Rebuild this router in place from :meth:`snapshot_state`."""
        self.master_seed = state["master_seed"]
        self._streams = {}
        for name, rng_state in state["streams"].items():
            rng = random.Random()
            rng.setstate(rng_state)
            self._streams[name] = rng

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RandomRouter seed={self.master_seed} "
                f"streams={sorted(self._streams)}>")


def exponential(rng: random.Random, mean: float) -> float:
    """Exponential variate with the given ``mean`` (not rate)."""
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    return rng.expovariate(1.0 / mean)


def bounded_normal(rng: random.Random, mean: float, stddev: float,
                   low: float, high: float) -> float:
    """Normal variate clamped to ``[low, high]``.

    Clamping (rather than rejection sampling) keeps the draw count per call
    constant, which preserves cross-run determinism when parameters change.
    """
    if low > high:
        raise ValueError(f"empty interval [{low}, {high}]")
    value = rng.gauss(mean, stddev)
    return min(max(value, low), high)


def pareto(rng: random.Random, shape: float, scale: float) -> float:
    """Pareto variate: ``scale`` is the minimum value, ``shape`` the tail index."""
    if shape <= 0 or scale <= 0:
        raise ValueError("shape and scale must be positive")
    return scale * (1.0 / (1.0 - rng.random())) ** (1.0 / shape)


def lognormal_from_median(rng: random.Random, median: float,
                          sigma: float) -> float:
    """Log-normal variate parameterised by its median.

    RTT jitter is conventionally modelled as log-normal; parameterising by
    the median keeps configuration intuitive (mu = ln(median)).
    """
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    return math.exp(rng.gauss(math.log(median), sigma))


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """Pick one item proportionally to ``weights`` (all >= 0, sum > 0)."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if any(weight < 0 for weight in weights):
        raise ValueError("weights must be non-negative")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if point < acc:
            return item
    return items[-1]


def sample_without_replacement(rng: random.Random, items: Sequence[T],
                               k: int) -> list[T]:
    """Uniform sample of ``min(k, len(items))`` distinct items."""
    k = min(k, len(items))
    if k <= 0:
        return []
    return rng.sample(list(items), k)


def shuffled(rng: random.Random, items: Sequence[T]) -> Iterator[T]:
    """Yield ``items`` in a uniformly random order without mutating input."""
    order = list(items)
    rng.shuffle(order)
    return iter(order)
