"""Simulated wall clock.

A tiny object rather than a bare float so that every component holding a
reference observes the same monotonically advancing time, and so tests can
assert on monotonicity violations early instead of debugging causality
bugs downstream.
"""

from __future__ import annotations

from .errors import SchedulingError


class Clock:
    """Monotonic simulated time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SchedulingError(f"clock cannot start at {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Jump the clock forward to ``time`` (never backwards)."""
        if time < self._now:
            raise SchedulingError(
                f"clock cannot move backwards: {self._now} -> {time}")
        self._now = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Clock t={self._now:.6f}>"
