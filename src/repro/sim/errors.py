"""Exception hierarchy for the simulation engine.

Keeping engine failures in a dedicated hierarchy lets callers distinguish
simulation bugs (scheduling in the past, running a stopped engine) from
ordinary Python errors raised by model code executing *inside* an event.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-engine errors."""


class SchedulingError(SimulationError):
    """An event was scheduled at an invalid time (e.g. in the past)."""


class EngineStoppedError(SimulationError):
    """An operation required a running engine but the engine has stopped."""


class ProcessError(SimulationError):
    """A simulation process misbehaved (e.g. yielded an unknown command)."""
