"""ISP-aware tracker (Wu, Li & Zhao-style, the paper's reference [28]).

The paper's related work discusses designs that "aim to have full ISP
awareness to constrain P2P traffic within ISP boundaries ... under the
assumption that the tracker server maintains the ISP information for
every available peer".  This tracker implements that assumption: it
resolves every registered peer through the IP->ASN directory and answers
each query with same-AS peers first, padding with others only when the
requester's ISP cannot fill the list.

Comparing it against the plain random tracker isolates how much
*tracker-side* topology awareness buys relative to PPLive's emergent
client-side locality.
"""

from __future__ import annotations

from typing import List, Optional

from ..network.asn import AsnDirectory
from ..network.bandwidth import SERVER, AccessProfile
from ..network.isp import ISP
from ..network.transport import UdpNetwork
from ..protocol import messages as m
from ..protocol.config import ProtocolConfig
from ..protocol.tracker import TrackerServer
from ..protocol.wire import wire_size
from ..sim.engine import Simulator
from ..sim.random import sample_without_replacement


class IspAwareTrackerServer(TrackerServer):
    """A tracker that biases its replies to the requester's own AS."""

    def __init__(self, sim: Simulator, network: UdpNetwork, address: str,
                 isp: ISP, config: ProtocolConfig,
                 directory: AsnDirectory,
                 profile: AccessProfile = SERVER,
                 group_id: int = 0,
                 internal_fraction: float = 0.9) -> None:
        super().__init__(sim, network, address, isp, config,
                         profile=profile, group_id=group_id)
        if not 0.0 <= internal_fraction <= 1.0:
            raise ValueError("internal_fraction must be in [0, 1]")
        self.directory = directory
        self.internal_fraction = internal_fraction
        self.internal_entries_served = 0
        self.external_entries_served = 0

    def _serve_query(self, requester: str, channel_id: int) -> None:
        self.queries_served += 1
        self._expire(channel_id)
        table = self._registry.setdefault(channel_id, {})
        others = [a for a in table if a != requester]

        requester_asn = self._asn_of(requester)
        internal = [a for a in others
                    if self._asn_of(a) == requester_asn]
        external = [a for a in others if a not in set(internal)]

        limit = self.config.tracker_reply_max
        want_internal = round(limit * self.internal_fraction)
        sample: List[str] = sample_without_replacement(
            self._rng, internal, min(want_internal, len(internal)))
        remaining = limit - len(sample)
        if remaining > 0:
            sample.extend(sample_without_replacement(
                self._rng, external, remaining))
        self.internal_entries_served += sum(
            1 for a in sample if self._asn_of(a) == requester_asn)
        self.external_entries_served += sum(
            1 for a in sample if self._asn_of(a) != requester_asn)

        table[requester] = self.sim.now
        reply = m.TrackerReply(channel_id=channel_id, peers=tuple(sample))
        self.send(requester, reply, wire_size(reply))

    def _asn_of(self, address: str) -> Optional[int]:
        record = self.directory.lookup(address)
        return record.asn if record is not None else None
