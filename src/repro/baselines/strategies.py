"""Baseline peer-selection strategies from the paper's related work.

Each strategy plugs into :class:`~repro.protocol.peer.PPLivePeer` through
the :class:`~repro.protocol.policy.PeerSelectionPolicy` interface, so the
rest of the client (handshake race, data scheduling) is identical and a
comparison isolates the selection policy itself:

* :class:`TrackerOnlyRandomPolicy` — the BitTorrent model: "peers get to
  know each other and make connections through the tracker only"; no
  neighbor referral, uniform random picks.
* :class:`BiasedNeighborPolicy` — Bindal et al. (ICDCS'06): keep roughly
  ``internal_fraction`` of connections inside the requester's ISP.
* :class:`OnoPolicy` — Choffnes & Bustamante (SIGCOMM'08): rank candidates
  by CDN-inferred proximity, connect to the nearest.
* :class:`P4PPolicy` — Xie et al. (SIGCOMM'08): consult the provider
  interface and prefer intra-ISP candidates outright.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Sequence

from ..protocol.config import ProtocolConfig
from ..protocol.peerlist import ListSource
from ..protocol.policy import PeerSelectionPolicy
from .oracles import IspOracle, ProximityOracle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..protocol.peer import PPLivePeer


class TrackerOnlyRandomPolicy(PeerSelectionPolicy):
    """BitTorrent-style membership: tracker lists only, random picks."""

    name = "tracker-only-random"
    uses_neighbor_referral = False

    def __init__(self, reannounce_interval: float = 60.0) -> None:
        if reannounce_interval <= 0:
            raise ValueError("reannounce_interval must be positive")
        self.reannounce_interval = reannounce_interval

    def tracker_interval(self, peer: "PPLivePeer",
                         config: ProtocolConfig) -> float:
        # The tracker is the only membership source, so the client must
        # keep polling it regardless of playback quality.
        return self.reannounce_interval

    def select_candidates(self, peer: "PPLivePeer",
                          addresses: Sequence[str],
                          source: ListSource,
                          rng: random.Random) -> List[str]:
        if source is not ListSource.TRACKER:
            return []
        deficit = self.connection_deficit(peer)
        if deficit <= 0:
            return []
        pool = self.fresh_connectable(peer, addresses)
        if not pool:
            return []
        batch = min(len(pool), max(peer.config.connect_batch, deficit))
        return rng.sample(pool, batch)


class BiasedNeighborPolicy(PeerSelectionPolicy):
    """Biased neighbor selection (Bindal et al.).

    Tries to keep ``internal_fraction`` of the neighbor set inside the
    client's own ISP, filling the remainder with external peers.  Uses
    the ISP oracle — i.e. infrastructure support PPLive does not need.
    """

    name = "biased-neighbor"
    uses_neighbor_referral = True

    def __init__(self, oracle: IspOracle,
                 internal_fraction: float = 0.9) -> None:
        if not 0.0 <= internal_fraction <= 1.0:
            raise ValueError("internal_fraction must be in [0, 1]")
        self.oracle = oracle
        self.internal_fraction = internal_fraction

    def select_candidates(self, peer: "PPLivePeer",
                          addresses: Sequence[str],
                          source: ListSource,
                          rng: random.Random) -> List[str]:
        deficit = self.connection_deficit(peer)
        if deficit <= 0:
            return []
        pool = self.fresh_connectable(peer, addresses)
        if not pool:
            return []
        batch = min(len(pool), max(peer.config.connect_batch, deficit))
        internal = [a for a in pool
                    if self.oracle.same_isp(peer.address, a)]
        external = [a for a in pool if a not in set(internal)]
        rng.shuffle(internal)
        rng.shuffle(external)
        want_internal = round(batch * self.internal_fraction)
        chosen = internal[:want_internal]
        chosen += external[:batch - len(chosen)]
        # Top up from whichever side still has spares.
        if len(chosen) < batch:
            leftovers = internal[want_internal:]
            chosen += leftovers[:batch - len(chosen)]
        return chosen


class OnoPolicy(PeerSelectionPolicy):
    """Ono: connect to the candidates estimated closest by the CDN trick."""

    name = "ono"
    uses_neighbor_referral = True

    def __init__(self, oracle: ProximityOracle) -> None:
        self.oracle = oracle

    def select_candidates(self, peer: "PPLivePeer",
                          addresses: Sequence[str],
                          source: ListSource,
                          rng: random.Random) -> List[str]:
        deficit = self.connection_deficit(peer)
        if deficit <= 0:
            return []
        pool = self.fresh_connectable(peer, addresses)
        if not pool:
            return []
        batch = min(len(pool), max(peer.config.connect_batch, deficit))
        ranked = sorted(pool, key=lambda a: self.oracle.estimated_rtt(
            peer.address, a))
        return ranked[:batch]


class P4PPolicy(PeerSelectionPolicy):
    """P4P: the provider portal says which candidates are intra-ISP."""

    name = "p4p"
    uses_neighbor_referral = True

    def __init__(self, oracle: IspOracle) -> None:
        self.oracle = oracle

    def select_candidates(self, peer: "PPLivePeer",
                          addresses: Sequence[str],
                          source: ListSource,
                          rng: random.Random) -> List[str]:
        deficit = self.connection_deficit(peer)
        if deficit <= 0:
            return []
        pool = self.fresh_connectable(peer, addresses)
        if not pool:
            return []
        batch = min(len(pool), max(peer.config.connect_batch, deficit))
        internal = [a for a in pool
                    if self.oracle.same_isp(peer.address, a)]
        external = [a for a in pool if a not in set(internal)]
        rng.shuffle(internal)
        rng.shuffle(external)
        chosen = internal[:batch]
        if len(chosen) < batch:
            chosen += external[:batch - len(chosen)]
        return chosen
