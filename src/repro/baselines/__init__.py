"""Baseline peer-selection strategies and their topology oracles (S6)."""

from .isp_tracker import IspAwareTrackerServer
from .oracles import IspOracle, ProximityOracle
from .strategies import (BiasedNeighborPolicy, OnoPolicy, P4PPolicy,
                         TrackerOnlyRandomPolicy)

__all__ = [
    "IspOracle",
    "ProximityOracle",
    "IspAwareTrackerServer",
    "TrackerOnlyRandomPolicy",
    "BiasedNeighborPolicy",
    "OnoPolicy",
    "P4PPolicy",
]
