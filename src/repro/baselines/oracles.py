"""Topology oracles the baseline strategies consult.

The whole point of the paper is that PPLive needs none of these.  The
baselines reproduce what the related work adds:

* :class:`IspOracle` — the P4P-style ISP/application interface: given an
  address, which AS does it belong to?  Backed by the ASN directory.
* :class:`ProximityOracle` — the Ono-style proximity estimate: Ono infers
  relative closeness from CDN redirection behaviour; we model the output
  of that inference as a noisy view of the true pairwise base RTT.
"""

from __future__ import annotations

import random
from typing import Optional

from ..network.asn import AsnDirectory
from ..network.isp import ISPCategory
from ..network.latency import LatencyModel
from ..network.transport import UdpNetwork


class IspOracle:
    """Answers "is that address in my ISP?" — the P4P interface."""

    def __init__(self, directory: AsnDirectory) -> None:
        self._directory = directory

    def asn_of(self, address: str) -> Optional[int]:
        record = self._directory.lookup(address)
        return record.asn if record is not None else None

    def category_of(self, address: str) -> Optional[ISPCategory]:
        return self._directory.category_of(address)

    def same_isp(self, a: str, b: str) -> bool:
        asn_a = self.asn_of(a)
        return asn_a is not None and asn_a == self.asn_of(b)


class ProximityOracle:
    """Ono-style latency estimation without active measurement.

    Returns the true pairwise base RTT perturbed by multiplicative noise
    (CDN-inferred proximity is correlated with, but not equal to, real
    latency).  ``noise_sigma = 0`` gives a perfect oracle.
    """

    def __init__(self, latency: LatencyModel, network: UdpNetwork,
                 rng: random.Random, noise_sigma: float = 0.25) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        self._latency = latency
        self._network = network
        self._rng = rng
        self.noise_sigma = noise_sigma

    def estimated_rtt(self, a: str, b: str) -> float:
        """Estimated RTT between two addresses, in seconds."""
        host_a = self._network.host_at(a)
        host_b = self._network.host_at(b)
        if host_a is None or host_b is None:
            # Unknown endpoint: return a pessimistic default so unreachable
            # candidates rank last.
            return 1.0
        true_rtt = self._latency.base_rtt(a, host_a.isp, b, host_b.isp)
        if self.noise_sigma == 0:
            return true_rtt
        noise = self._rng.lognormvariate(0.0, self.noise_sigma)
        return true_rtt * noise
