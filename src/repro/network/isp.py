"""ISP and autonomous-system modelling.

The paper groups every observed peer into five ISP categories:

* ``TELE`` — ChinaTelecom (most residential users in south China),
* ``CNC`` — ChinaNetcom (north China residential),
* ``CER`` — CERNET, the China Education and Research Network,
* ``OtherCN`` — smaller Chinese ISPs (China Unicom, China Railway ...),
* ``Foreign`` — every ISP outside China.

We model each category as one or more :class:`ISP` objects carrying real
autonomous-system-like metadata (ASN, AS name, country) so the analysis
pipeline can perform the same IP -> ASN -> ISP-category join the authors
did with the Team Cymru service.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


class ISPCategory(enum.Enum):
    """The paper's five-way grouping of ISPs."""

    TELE = "TELE"
    CNC = "CNC"
    CER = "CER"
    OTHER_CN = "OtherCN"
    FOREIGN = "Foreign"

    @property
    def is_chinese(self) -> bool:
        return self is not ISPCategory.FOREIGN

    def __str__(self) -> str:
        return self.value


#: Grouping used in the response-time figures (Figs 7-10, Table 1): CER,
#: OtherCN and Foreign are merged into a single OTHER group because few
#: CER peers participate in entertainment streaming.
class ResponseGroup(enum.Enum):
    TELE = "TELE"
    CNC = "CNC"
    OTHER = "OTHER"

    def __str__(self) -> str:
        return self.value


def response_group(category: ISPCategory) -> ResponseGroup:
    """Map the five-way ISP category onto the three-way response group."""
    if category is ISPCategory.TELE:
        return ResponseGroup.TELE
    if category is ISPCategory.CNC:
        return ResponseGroup.CNC
    return ResponseGroup.OTHER


@dataclass(frozen=True)
class ISP:
    """One autonomous system participating in the simulated Internet."""

    name: str
    asn: int
    category: ISPCategory
    country: str
    #: CIDR prefixes owned by this AS; filled in by the address allocator.
    prefixes: tuple = field(default_factory=tuple)

    @property
    def as_name(self) -> str:
        """Team-Cymru-style AS name string (``ASNAME, CC``)."""
        return f"{self.name.upper().replace(' ', '-')}, {self.country}"

    def __str__(self) -> str:
        return f"AS{self.asn} {self.name} [{self.category}]"


class ISPCatalog:
    """Registry of all ISPs in a simulated Internet."""

    def __init__(self, isps: Sequence[ISP]) -> None:
        self._by_asn: Dict[int, ISP] = {}
        self._by_name: Dict[str, ISP] = {}
        self._by_category: Dict[ISPCategory, List[ISP]] = {
            category: [] for category in ISPCategory}
        for isp in isps:
            self.add(isp)

    def add(self, isp: ISP) -> None:
        if isp.asn in self._by_asn:
            raise ValueError(f"duplicate ASN {isp.asn}")
        if isp.name in self._by_name:
            raise ValueError(f"duplicate ISP name {isp.name!r}")
        self._by_asn[isp.asn] = isp
        self._by_name[isp.name] = isp
        self._by_category[isp.category].append(isp)

    def by_asn(self, asn: int) -> ISP:
        return self._by_asn[asn]

    def by_name(self, name: str) -> ISP:
        return self._by_name[name]

    def in_category(self, category: ISPCategory) -> List[ISP]:
        return list(self._by_category[category])

    def __iter__(self):
        return iter(self._by_asn.values())

    def __len__(self) -> int:
        return len(self._by_asn)

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn


def default_isp_catalog() -> ISPCatalog:
    """The simulated Internet used throughout the reproduction.

    ASNs for the Chinese carriers match their real-world numbers
    (AS4134 ChinaTelecom, AS4837/AS9929 ChinaNetcom-era networks, AS4538
    CERNET); foreign ASes are representative eyeball networks covering
    North America, Europe and Asia-Pacific, since the paper observed a
    large PPLive population outside China.
    """
    return ISPCatalog([
        ISP("ChinaTelecom", 4134, ISPCategory.TELE, "CN"),
        ISP("ChinaNetcom", 4837, ISPCategory.CNC, "CN"),
        ISP("CERNET", 4538, ISPCategory.CER, "CN"),
        ISP("ChinaUnicom", 9929, ISPCategory.OTHER_CN, "CN"),
        ISP("ChinaRailcom", 9394, ISPCategory.OTHER_CN, "CN"),
        ISP("ChinaMobile", 9808, ISPCategory.OTHER_CN, "CN"),
        ISP("Comcast", 7922, ISPCategory.FOREIGN, "US"),
        ISP("Verizon", 701, ISPCategory.FOREIGN, "US"),
        ISP("GMU-Campus", 62, ISPCategory.FOREIGN, "US"),
        ISP("DeutscheTelekom", 3320, ISPCategory.FOREIGN, "DE"),
        ISP("NTT-OCN", 4713, ISPCategory.FOREIGN, "JP"),
        ISP("KoreaTelecom", 4766, ISPCategory.FOREIGN, "KR"),
        ISP("HKBN", 9269, ISPCategory.FOREIGN, "HK"),
    ])
