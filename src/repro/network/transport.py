"""UDP-like datagram transport over the simulated underlay.

:class:`UdpNetwork` connects registered hosts.  A send experiences, in
order:

1. the sender's uplink queue (wait + serialisation, possibly tail-drop),
2. a Bernoulli loss draw for the path class,
3. one-way propagation delay from the :class:`LatencyModel`,

after which the receiving host's :meth:`Host.handle_datagram` runs.  If
the destination deregistered while the packet was in flight (peer churn),
the packet is silently dropped — exactly what the real Internet does.

Sniffer taps (:meth:`UdpNetwork.add_tap`) observe every datagram at send
and delivery time — or only the events they subscribe to — and the
capture substrate builds Wireshark-style traces on top of them without
touching protocol internals.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..fastpath import reference_path_enabled
from ..obs import DEBUG, WARNING, Instrumentation
from ..obs import resolve as resolve_obs
from ..sim.engine import Simulator
from .bandwidth import AccessProfile, UplinkQueue
from .datagram import HEADER_BYTES, Datagram
from .isp import ISP
from .latency import LatencyModel

#: Tap signature: (event, datagram, time).  ``event`` is "send", "recv",
#: "drop_uplink", "drop_loss" or "drop_fault".
TapFn = Callable[[str, Datagram, float], None]


class Host:
    """Base class for anything with an address on the simulated Internet.

    Subclasses (peers, trackers, the bootstrap server) implement
    :meth:`handle_datagram`.  The host owns its uplink queue; the network
    owns propagation and loss.
    """

    def __init__(self, sim: Simulator, network: "UdpNetwork",
                 address: str, isp: ISP, profile: AccessProfile) -> None:
        self.sim = sim
        self.network = network
        self.address = address
        self.isp = isp
        self.profile = profile
        self.uplink = UplinkQueue(profile)
        self.online = False
        #: Fault-injection receive filter: (drop_probability, rng) while
        #: a server-outage window is active, else None.
        self._fault_filter = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def go_online(self) -> None:
        """Attach to the network and start receiving datagrams."""
        if not self.online:
            self.network.register(self)
            self.uplink.reset(self.sim.now)
            self.online = True

    def go_offline(self) -> None:
        """Detach; in-flight packets to this host will be dropped."""
        if self.online:
            self.network.deregister(self)
            self.online = False

    # ------------------------------------------------------------------
    # Fault injection (server outage / degradation windows)
    # ------------------------------------------------------------------
    def install_fault_filter(self, drop_probability: float, rng) -> None:
        """Drop each arriving datagram with ``drop_probability``.

        With probability 1 the host goes silent (no RNG draws at all);
        below 1 it degrades, drawing from the fault's own stream.  The
        host stays registered: its address remains routable, like a real
        server whose process hangs while the IP keeps answering ARP.
        """
        if not 0.0 < drop_probability <= 1.0:
            raise ValueError("drop_probability must be in (0, 1]")
        self._fault_filter = (drop_probability, rng)

    def clear_fault_filter(self) -> None:
        """End the outage window; the host answers normally again."""
        self._fault_filter = None

    def fault_drops(self) -> bool:
        """One receive decision under the current fault filter."""
        if self._fault_filter is None:
            return False
        probability, rng = self._fault_filter
        if probability >= 1.0:
            return True
        return rng.random() < probability

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def send(self, dst: str, payload: Any, payload_bytes: int) -> bool:
        """Transmit one datagram; returns False if dropped at the uplink."""
        return self.network.send(self, dst, payload, payload_bytes)

    def send_many(self, sends: List[tuple]) -> None:
        """Transmit a cohort of ``(dst, payload, payload_bytes)`` triples.

        Semantically identical to calling :meth:`send` per triple in
        order; the network batches the per-datagram bookkeeping and RNG
        draws (see :meth:`UdpNetwork.send_many`).
        """
        self.network.send_many(self, sends)

    def handle_datagram(self, datagram: Datagram) -> None:
        """Receive one datagram.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "online" if self.online else "offline"
        return (f"<{type(self).__name__} {self.address} "
                f"{self.isp.category} {state}>")


class UdpNetwork:
    """The simulated Internet's datagram plane."""

    #: The tap event vocabulary (`add_tap`'s ``events`` filter).
    TAP_EVENTS = frozenset({"send", "recv", "drop_uplink", "drop_loss",
                            "drop_fault"})

    def __init__(self, sim: Simulator, latency: LatencyModel,
                 obs: Optional[Instrumentation] = None) -> None:
        self.sim = sim
        self.latency = latency
        self._hosts: Dict[str, Host] = {}
        self._taps: List[TapFn] = []
        #: tap -> frozenset of events it wants, or None for all of them.
        self._tap_filters: Dict[TapFn, Optional[frozenset]] = {}
        # Per-event dispatch lists, derived from _taps/_tap_filters: the
        # send/recv hot paths loop over exactly the taps that asked for
        # that event, so a recv-only ledger costs nothing at send time.
        self._send_taps: List[TapFn] = []
        self._recv_taps: List[TapFn] = []
        #: Single-consumer per-delivery accounting sink, or None.  Taps
        #: are the general observe-anything seam; the sink is the one
        #: seam allowed on the delivery fast path with the wire size
        #: handed over instead of recomputed (see set_flow_sink).
        self._flow_sink: Optional[Callable[[Datagram, float, int], None]] \
            = None
        #: Sampled at construction (see repro.fastpath): when set, the
        #: cohort send path degrades to per-datagram reference sends.
        self._reference_path = reference_path_enabled()
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_lost = 0
        self.datagrams_dropped_uplink = 0
        self.datagrams_dropped_offline = 0
        self.datagrams_dropped_fault = 0
        self.bytes_delivered = 0
        # Observability: instruments are bound once here; with the
        # default null bundle every update below is a no-op call.
        obs = resolve_obs(obs)
        self._obs = obs
        self._obs_enabled = obs.enabled
        self._trace = obs.trace
        self._spans = obs.spans
        metrics = obs.metrics
        self._m_messages_sent = metrics.counter_family(
            "net.messages_sent", "type")
        self._m_sent = metrics.counter("net.datagrams_sent")
        self._m_delivered = metrics.counter("net.datagrams_delivered")
        self._m_lost = metrics.counter("net.datagrams_lost")
        self._m_dropped_uplink = metrics.counter(
            "net.datagrams_dropped_uplink")
        self._m_dropped_offline = metrics.counter(
            "net.datagrams_dropped_offline")
        self._m_dropped_fault = metrics.counter(
            "net.datagrams_dropped_fault")
        self._m_bytes_delivered = metrics.counter("net.bytes_delivered")
        self._m_bytes_queued = metrics.counter("net.bytes_queued_uplink")
        self._h_backlog = metrics.histogram(
            "net.uplink_backlog_seconds",
            bounds=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 5.0))

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, host: Host) -> None:
        existing = self._hosts.get(host.address)
        if existing is not None and existing is not host:
            raise ValueError(f"address {host.address} already registered")
        self._hosts[host.address] = host

    def deregister(self, host: Host) -> None:
        if self._hosts.get(host.address) is host:
            del self._hosts[host.address]

    def host_at(self, address: str) -> Optional[Host]:
        return self._hosts.get(address)

    @property
    def online_count(self) -> int:
        return len(self._hosts)

    def online_by_isp(self) -> Dict[str, int]:
        """Online host counts per ISP name, sorted by name.

        Deterministic for a fixed seed (registration is simulation
        state); feeds the progress bus's per-ISP heartbeat field.
        """
        counts: Dict[str, int] = {}
        for host in self._hosts.values():
            name = host.isp.name
            counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    # Taps (capture substrate attaches here)
    # ------------------------------------------------------------------
    def add_tap(self, tap: TapFn, events=None) -> None:
        """Register ``tap`` to observe datagram events.

        With the default ``events=None`` the tap sees every event.  Pass
        an iterable of event names (a subset of :data:`TAP_EVENTS`) to
        subscribe to just those: a recv-only ledger then pays nothing on
        the send path, which matters when a tap runs per delivered
        datagram on the simulator hot path.

        A tap may be registered at most once — double-accounting bytes
        silently would corrupt any ledger attached here — so a duplicate
        registration raises instead.
        """
        if tap in self._taps:
            raise ValueError(f"tap {tap!r} is already registered")
        if events is not None:
            events = frozenset(events)
            unknown = events - self.TAP_EVENTS
            if unknown:
                raise ValueError(
                    f"unknown tap events {sorted(unknown)!r}; "
                    f"expected a subset of {sorted(self.TAP_EVENTS)!r}")
        self._taps.append(tap)
        self._tap_filters[tap] = events
        self._rebuild_tap_lists()

    def remove_tap(self, tap: TapFn) -> None:
        """Unregister ``tap``; safe mid-run.

        Removing the last tap restores the no-tap fast path (`send` and
        `_deliver` gate on the tap lists' truthiness, not on whether a
        tap was ever attached).  Removing a tap that is not registered
        raises to surface lifecycle bugs early.
        """
        try:
            self._taps.remove(tap)
        except ValueError:
            raise ValueError(f"tap {tap!r} is not registered") from None
        del self._tap_filters[tap]
        self._rebuild_tap_lists()

    def _rebuild_tap_lists(self) -> None:
        filters = self._tap_filters
        self._send_taps = [
            tap for tap in self._taps
            if filters[tap] is None or "send" in filters[tap]]
        self._recv_taps = [
            tap for tap in self._taps
            if filters[tap] is None or "recv" in filters[tap]]

    def _notify(self, event: str, datagram: Datagram, time: float) -> None:
        filters = self._tap_filters
        for tap in self._taps:
            events = filters[tap]
            if events is None or event in events:
                tap(event, datagram, time)

    def set_flow_sink(self, sink: Callable[[Datagram, float, int],
                                           None]) -> None:
        """Install the per-delivery accounting sink.

        ``sink(datagram, now, wire_bytes)`` runs once per *delivered*
        datagram, with the wire size ``_deliver`` already computed for
        its own byte counters.  Exactly one sink may be installed —
        double accounting is the same silent corruption double tap
        registration guards against — so installing over an existing
        sink raises.  Flow accounting attaches here; anything that
        wants send/drop events, or several observers at once, belongs
        on the tap seam instead.
        """
        if self._flow_sink is not None:
            raise ValueError("a flow sink is already installed")
        self._flow_sink = sink

    def clear_flow_sink(self) -> None:
        """Uninstall the sink; safe mid-run, restores the fast path."""
        self._flow_sink = None

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def send(self, src_host: Host, dst: str, payload: Any,
             payload_bytes: int) -> bool:
        """Send a datagram from ``src_host`` to address ``dst``.

        The steady-state fast path — no taps, null observability, packet
        survives the uplink and the loss draw — costs one
        :class:`Datagram` allocation, one uplink update, one cached
        latency lookup plus its two RNG draws, and one pooled delivery
        event (no closure).  Taps and instrumentation only add observers;
        they never change the draws or the delivery schedule.
        """
        sim = self.sim
        now = sim.clock._now
        datagram = Datagram(src=src_host.address, dst=dst, payload=payload,
                            payload_bytes=payload_bytes, sent_at=now)
        wire_bytes = payload_bytes + HEADER_BYTES
        taps = self._taps
        self.datagrams_sent += 1
        if self._obs_enabled:
            self._m_sent.inc()
            self._m_messages_sent.labeled(type(payload).__name__).inc()
            self._h_backlog.observe(src_host.uplink.backlog(now))

        uplink_delay = src_host.uplink.enqueue(wire_bytes, now)
        if uplink_delay is None:
            self.datagrams_dropped_uplink += 1
            self._m_dropped_uplink.inc()
            if self._trace.enabled_for(WARNING):
                self._trace.emit(now, WARNING, "uplink_tail_drop",
                                 src=datagram.src, dst=dst,
                                 wire_bytes=wire_bytes,
                                 msg=type(payload).__name__)
            if self._spans.enabled:
                # Tail drops truncate data transactions: the instant
                # marks where a request/reply span will end in timeout.
                self._spans.instant("uplink_tail_drop", "net", now,
                                    actor=datagram.src, dst=dst,
                                    msg=type(payload).__name__)
            if taps:
                self._notify("drop_uplink", datagram, now)
            return False
        if self._obs_enabled:
            self._m_bytes_queued.inc(wire_bytes)
        send_taps = self._send_taps
        if send_taps:
            for tap in send_taps:
                tap("send", datagram, now)

        latency = self.latency
        dst_host = self._hosts.get(dst)
        dst_isp = dst_host.isp if dst_host is not None else None
        if dst_isp is not None and latency.is_lost(src_host.isp, dst_isp):
            self.datagrams_lost += 1
            self._m_lost.inc()
            if self._trace.enabled_for(DEBUG):
                self._trace.emit(now, DEBUG, "path_loss",
                                 src=datagram.src, dst=dst,
                                 msg=type(payload).__name__)
            if taps:
                self._notify("drop_loss", datagram, now)
            return True  # the sender cannot tell loss from silence

        if dst_isp is None:
            # Destination unknown right now; approximate propagation with
            # the source's intra-ISP delay so late joins behave sanely.
            propagation = latency.one_way_delay(
                src_host.address, src_host.isp, dst, src_host.isp,
                wire_bytes)
        else:
            propagation = latency.one_way_delay(
                src_host.address, src_host.isp, dst, dst_isp,
                wire_bytes)

        deliver_at = now + uplink_delay + propagation
        sim.post(deliver_at, self._deliver, datagram, label="udp-deliver")
        return True

    def send_many(self, src_host: Host, sends: List[tuple]) -> None:
        """Send a cohort of datagrams from one host in a single pass.

        ``sends`` holds ``(dst, payload, payload_bytes)`` triples in
        transmit order.  Byte-identical in outcome to calling
        :meth:`send` once per triple: the uplink arithmetic runs first
        for every datagram (in order, no RNG), then the loss draws for
        the uplink survivors, then the jitter draws for the unlost —
        and because loss and jitter live on separate RNG streams, each
        stream still sees its draws in exact per-packet order.  What
        changes is wall-clock cost: per-datagram bookkeeping is
        amortised over the cohort, the draws are batched through
        :meth:`LatencyModel.are_lost` / :meth:`~LatencyModel.
        one_way_delays`, and deliveries landing on the same timestamp
        collapse into one cohort event (each member still counted in
        ``events_executed``, so engine digests match the unbatched
        path).  ``REPRO_REFERENCE_PATH=1`` forces the per-datagram
        reference path instead.  Within-cohort trace/tap emission
        groups by phase rather than by packet; event outcomes and
        counters are unaffected.
        """
        if self._reference_path or len(sends) < 2:
            for dst, payload, payload_bytes in sends:
                self.send(src_host, dst, payload, payload_bytes)
            return
        sim = self.sim
        now = sim.clock._now
        taps = self._taps
        send_taps = self._send_taps
        trace = self._trace
        spans = self._spans
        obs_enabled = self._obs_enabled
        hosts = self._hosts
        uplink = src_host.uplink
        enqueue = uplink.enqueue
        src_address = src_host.address
        src_isp = src_host.isp
        survivors = []
        keep = survivors.append
        # Cohort-constant counters fold into one update each; per-packet
        # increments stay per-packet only where a drop can interleave.
        self.datagrams_sent += len(sends)
        if obs_enabled:
            self._m_sent.inc(len(sends))
        queued_bytes = 0
        for dst, payload, payload_bytes in sends:
            datagram = Datagram(src=src_address, dst=dst, payload=payload,
                                payload_bytes=payload_bytes, sent_at=now)
            wire_bytes = payload_bytes + HEADER_BYTES
            if obs_enabled:
                self._m_messages_sent.labeled(type(payload).__name__).inc()
                self._h_backlog.observe(uplink.backlog(now))
            uplink_delay = enqueue(wire_bytes, now)
            if uplink_delay is None:
                self.datagrams_dropped_uplink += 1
                self._m_dropped_uplink.inc()
                if trace.enabled_for(WARNING):
                    trace.emit(now, WARNING, "uplink_tail_drop",
                               src=src_address, dst=dst,
                               wire_bytes=wire_bytes,
                               msg=type(payload).__name__)
                if spans.enabled:
                    spans.instant("uplink_tail_drop", "net", now,
                                  actor=src_address, dst=dst,
                                  msg=type(payload).__name__)
                if taps:
                    self._notify("drop_uplink", datagram, now)
                continue
            queued_bytes += wire_bytes
            if send_taps:
                for tap in send_taps:
                    tap("send", datagram, now)
            dst_host = hosts.get(dst)
            keep((datagram, wire_bytes, uplink_delay,
                  dst_host.isp if dst_host is not None else None))
        if queued_bytes and obs_enabled:
            self._m_bytes_queued.inc(queued_bytes)
        if not survivors:
            return
        latency = self.latency
        # Loss draws: one per survivor with a known destination, in
        # cohort order — unknown destinations skip the draw, as in
        # send().
        loss_pairs = [(src_isp, dst_isp)
                      for _d, _w, _u, dst_isp in survivors
                      if dst_isp is not None]
        verdicts = latency.are_lost(loss_pairs) if loss_pairs else ()
        alive = []
        items = []
        verdict_index = 0
        for entry in survivors:
            dst_isp = entry[3]
            if dst_isp is not None:
                lost = verdicts[verdict_index]
                verdict_index += 1
                if lost:
                    datagram = entry[0]
                    self.datagrams_lost += 1
                    self._m_lost.inc()
                    if trace.enabled_for(DEBUG):
                        trace.emit(now, DEBUG, "path_loss",
                                   src=src_address, dst=datagram.dst,
                                   msg=type(datagram.payload).__name__)
                    if taps:
                        self._notify("drop_loss", datagram, now)
                    continue
            alive.append(entry)
            # Unknown destination: approximate propagation with the
            # source's intra-ISP delay, exactly as send() does.
            items.append((src_address, src_isp, entry[0].dst,
                          dst_isp if dst_isp is not None else src_isp,
                          entry[1]))
        if not alive:
            return
        delays = latency.one_way_delays(items)
        post = sim.post
        deliver = self._deliver
        # Group same-timestamp deliveries into one cohort event.  All
        # cohort members were scheduled back to back, so merging
        # equal-time members preserves their relative (seq) order; ties
        # against events scheduled elsewhere are unaffected.
        groups: Dict[float, list] = {}
        order = []
        for entry, propagation in zip(alive, delays):
            deliver_at = now + entry[2] + propagation
            bucket = groups.get(deliver_at)
            if bucket is None:
                groups[deliver_at] = [entry[0]]
                order.append(deliver_at)
            else:
                bucket.append(entry[0])
        for deliver_at in order:
            bucket = groups[deliver_at]
            if len(bucket) == 1:
                post(deliver_at, deliver, bucket[0], label="udp-deliver")
            else:
                post(deliver_at, self._deliver_cohort, bucket,
                     label="udp-deliver")

    def _deliver_cohort(self, datagrams: list) -> None:
        """Deliver a same-timestamp cohort scheduled as one event.

        Every member past the first is folded into ``events_executed``
        here, so the engine's event ledger (and the golden digests built
        on it) is identical whether the cohort was dispatched as one
        batched callback or as individual delivery events.
        """
        self.sim.events_executed += len(datagrams) - 1
        deliver = self._deliver
        for datagram in datagrams:
            deliver(datagram)

    def _deliver(self, datagram: Datagram) -> None:
        host = self._hosts.get(datagram.dst)
        if host is None:
            self.datagrams_dropped_offline += 1
            self._m_dropped_offline.inc()
            return
        if host._fault_filter is not None and host.fault_drops():
            self.datagrams_dropped_fault += 1
            self._m_dropped_fault.inc()
            now = self.sim.clock._now
            if self._trace.enabled_for(DEBUG):
                self._trace.emit(now, DEBUG, "fault_drop",
                                 src=datagram.src, dst=datagram.dst,
                                 msg=type(datagram.payload).__name__)
            if self._taps:
                self._notify("drop_fault", datagram, now)
            return
        wire_bytes = datagram.payload_bytes + HEADER_BYTES
        self.datagrams_delivered += 1
        self.bytes_delivered += wire_bytes
        if self._obs_enabled:
            # Null-instrument calls are no-ops but not free at this
            # volume; the flag mirrors whether the metrics are real.
            self._m_delivered.inc()
            self._m_bytes_delivered.inc(wire_bytes)
        sink = self._flow_sink
        if sink is not None:
            sink(datagram, self.sim.clock._now, wire_bytes)
        recv_taps = self._recv_taps
        if recv_taps:
            now = self.sim.clock._now
            for tap in recv_taps:
                tap("recv", datagram, now)
        host.handle_datagram(datagram)
