"""Simulated Internet underlay (substrates S2 + S3).

ISPs and ASes, IPv4 addressing, an IP->ASN directory mirroring the Team
Cymru service, a calibrated latency model, access-link bandwidth with
FIFO uplink queueing, and a UDP-like datagram transport with sniffer taps.
"""

from .addressing import AddressAllocator, AddressExhaustedError, Prefix
from .asn import AsnDirectory, AsnRecord
from .bandwidth import (ADSL, CABLE, CAMPUS, SERVER, AccessProfile,
                        UplinkQueue)
from .builder import Internet, build_internet
from .datagram import HEADER_BYTES, Datagram
from .isp import (ISP, ISPCatalog, ISPCategory, ResponseGroup,
                  default_isp_catalog, response_group)
from .latency import (LatencyConfig, LatencyModel, PairClass, RttBand,
                      classify_pair)
from .transport import Host, UdpNetwork

__all__ = [
    "ISP", "ISPCatalog", "ISPCategory", "ResponseGroup",
    "default_isp_catalog", "response_group",
    "AddressAllocator", "AddressExhaustedError", "Prefix",
    "AsnDirectory", "AsnRecord",
    "AccessProfile", "UplinkQueue", "ADSL", "CABLE", "CAMPUS", "SERVER",
    "LatencyConfig", "LatencyModel", "PairClass", "RttBand", "classify_pair",
    "Datagram", "HEADER_BYTES",
    "Host", "UdpNetwork",
    "Internet", "build_internet",
]
