"""Convenience builder wiring together a complete simulated Internet.

Most callers (examples, experiments, tests) want "an Internet with the
default ISPs, addressing, ASN directory, latency model and transport" in
one call — :func:`build_internet` provides that; :class:`Internet` is the
returned bundle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import Simulator
from .addressing import AddressAllocator
from .asn import AsnDirectory
from .isp import ISP, ISPCatalog, ISPCategory, default_isp_catalog
from .latency import LatencyConfig, LatencyModel
from .transport import UdpNetwork


@dataclass
class Internet:
    """A fully wired underlay: catalog, addressing, directory, transport."""

    sim: Simulator
    catalog: ISPCatalog
    allocator: AddressAllocator
    directory: AsnDirectory
    latency: LatencyModel
    udp: UdpNetwork

    def isp_named(self, name: str) -> ISP:
        return self.catalog.by_name(name)

    def isps_in(self, category: ISPCategory) -> list:
        return self.catalog.in_category(category)


def build_internet(sim: Simulator,
                   catalog: ISPCatalog = None,
                   latency_config: LatencyConfig = None,
                   blocks_per_isp: int = 4,
                   obs=None) -> Internet:
    """Construct the default simulated Internet on ``sim``.

    The latency model is seeded from the simulator's master seed so that
    the whole run is reproducible from one number.  ``obs`` is an
    optional :class:`repro.obs.Instrumentation` threaded into the
    transport layer.
    """
    if catalog is None:
        catalog = default_isp_catalog()
    if latency_config is None:
        latency_config = LatencyConfig()
    allocator = AddressAllocator(catalog, blocks_per_isp=blocks_per_isp)
    directory = AsnDirectory(catalog, allocator)
    latency = LatencyModel(latency_config, master_seed=sim.seed)
    udp = UdpNetwork(sim, latency, obs=obs)
    return Internet(sim=sim, catalog=catalog, allocator=allocator,
                    directory=directory, latency=latency, udp=udp)
