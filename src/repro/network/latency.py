"""Underlay latency model.

The paper's explanation for PPLive's emergent locality rests on one
physical fact: peers in the same ISP exchange packets faster than peers in
different ISPs, which in turn beat transoceanic pairs.  This module makes
that structure explicit and tunable.

For a pair of hosts the model produces a *stable base RTT* — drawn once
per (address, address) pair from the pair-class distribution, so repeated
probes between the same two hosts are consistent — plus per-packet jitter.
Pair classes:

* ``INTRA_ISP``        — both endpoints in the same AS,
* ``DOMESTIC``         — same country, different AS,
* ``TELE_CNC_PEERING`` — the notoriously congested ChinaTelecom <->
  ChinaNetcom interconnect (higher base than ordinary domestic),
* ``INTERNATIONAL``    — different countries, neither path crosses an
  ocean (e.g. intra-Europe / intra-Asia),
* ``TRANSOCEANIC``     — China <-> North America / Europe.

The defaults are calibrated to published 2008-era measurements: ~20-40 ms
within a Chinese carrier, 60-110 ms across domestic carriers, and
180-280 ms across the Pacific.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..sim.random import RandomRouter, derive_seed
from .isp import ISP, ISPCategory

try:
    # numpy is optional and only ever vectorises elementwise float64
    # arithmetic (*, /, +, <) — operations IEEE 754 defines exactly, so
    # results are bit-identical to the scalar path.  RNG draws and
    # math.exp stay in pure Python on both paths: their sequences and
    # roundings are part of the determinism contract.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

#: Below this cohort size the numpy array round-trip (five list->array
#: conversions plus ``.tolist()``) costs more than the scalar loop it
#: replaces; measured crossover on CPython 3.11 sits near 48 elements.
_NUMPY_MIN_BATCH = 48


class PairClass(enum.Enum):
    INTRA_ISP = "intra_isp"
    DOMESTIC = "domestic"
    TELE_CNC_PEERING = "tele_cnc_peering"
    CERNET_GATEWAY = "cernet_gateway"
    INTERNATIONAL = "international"
    TRANSOCEANIC = "transoceanic"

    def __str__(self) -> str:
        return self.value


#: Continent assignment used to decide TRANSOCEANIC vs INTERNATIONAL.
_CONTINENT = {
    "CN": "asia", "HK": "asia", "JP": "asia", "KR": "asia",
    "US": "america", "CA": "america",
    "DE": "europe", "FR": "europe", "GB": "europe",
}


def classify_pair(a: ISP, b: ISP) -> PairClass:
    """Determine the latency class of the path between two ASes."""
    if a.asn == b.asn:
        return PairClass.INTRA_ISP
    tele_cnc = {ISPCategory.TELE, ISPCategory.CNC}
    if {a.category, b.category} == tele_cnc:
        return PairClass.TELE_CNC_PEERING
    # CERNET's gateways to the commodity Chinese Internet were famously
    # congested in the 2000s: anything crossing them is its own class.
    if (ISPCategory.CER in (a.category, b.category)
            and a.country == b.country == "CN"):
        return PairClass.CERNET_GATEWAY
    if a.country == b.country:
        return PairClass.DOMESTIC
    continent_a = _CONTINENT.get(a.country, "other")
    continent_b = _CONTINENT.get(b.country, "other")
    if continent_a == continent_b:
        return PairClass.INTERNATIONAL
    return PairClass.TRANSOCEANIC


@dataclass(frozen=True)
class PathOverride:
    """Dynamic path-quality override for one :class:`PairClass`.

    Installed and removed by the fault injector for the duration of a
    link-degradation episode.  All factors apply *after* the model's
    normal draws — overrides never change the RNG draw count, which
    keeps every other stream in the run byte-identical.  Overrides
    stack multiplicatively (``extra_loss`` adds).
    """

    loss_multiplier: float = 1.0
    extra_loss: float = 0.0
    latency_multiplier: float = 1.0
    bandwidth_multiplier: float = 1.0


@dataclass(frozen=True)
class RttBand:
    """Log-normal base-RTT distribution for one pair class (seconds)."""

    median: float
    sigma: float
    floor: float
    ceiling: float

    def sample(self, gauss: float) -> float:
        """Draw a base RTT given a pre-drawn standard-normal variate."""
        value = math.exp(math.log(self.median) + self.sigma * gauss)
        return min(max(value, self.floor), self.ceiling)


@dataclass
class LatencyConfig:
    """All tunables of the latency model."""

    bands: Dict[PairClass, RttBand] = field(default_factory=lambda: {
        PairClass.INTRA_ISP: RttBand(0.028, 0.45, 0.004, 0.120),
        PairClass.DOMESTIC: RttBand(0.075, 0.35, 0.025, 0.250),
        PairClass.TELE_CNC_PEERING: RttBand(0.110, 0.35, 0.045, 0.350),
        PairClass.CERNET_GATEWAY: RttBand(0.130, 0.35, 0.050, 0.400),
        PairClass.INTERNATIONAL: RttBand(0.090, 0.40, 0.030, 0.300),
        PairClass.TRANSOCEANIC: RttBand(0.230, 0.25, 0.130, 0.450),
    })
    #: Multiplicative per-packet jitter: lognormal with this sigma.
    jitter_sigma: float = 0.12
    #: Additive per-packet jitter floor/ceiling as fraction of base delay.
    jitter_max_factor: float = 2.0
    #: Packet-loss probability per pair class.
    loss: Dict[PairClass, float] = field(default_factory=lambda: {
        PairClass.INTRA_ISP: 0.002,
        PairClass.DOMESTIC: 0.008,
        PairClass.TELE_CNC_PEERING: 0.020,
        PairClass.CERNET_GATEWAY: 0.025,
        PairClass.INTERNATIONAL: 0.012,
        PairClass.TRANSOCEANIC: 0.030,
    })
    #: Achievable bulk-transfer rate along the path (bits/second).  Long
    #: congested paths (the 2008 TELE<->CNC interconnect, transoceanic
    #: links) deliver bulk data far below the endpoints' access rates;
    #: per-datagram delay grows by ``wire_bytes * 8 / path_bps``.
    path_bps: Dict[PairClass, float] = field(default_factory=lambda: {
        PairClass.INTRA_ISP: 25_000_000.0,
        PairClass.DOMESTIC: 3_000_000.0,
        PairClass.TELE_CNC_PEERING: 1_200_000.0,
        PairClass.CERNET_GATEWAY: 900_000.0,
        PairClass.INTERNATIONAL: 2_000_000.0,
        PairClass.TRANSOCEANIC: 800_000.0,
    })


class LatencyModel:
    """Produces stable pairwise base RTTs and per-packet one-way delays."""

    def __init__(self, config: LatencyConfig, master_seed: int = 0) -> None:
        self.config = config
        self._master_seed = master_seed
        self._base_rtt_cache: Dict[Tuple[str, str], float] = {}
        self._router = RandomRouter(derive_seed(master_seed, "latency"))
        self._jitter_rng = self._router.stream("jitter")
        self._loss_rng = self._router.stream("loss")
        self._overrides: Dict[PairClass, List[PathOverride]] = {}
        # Per-ASN-pair fast path: (asn, asn) -> (pair_class, loss_prob,
        # path_bps).  Classification and the per-class table lookups are
        # pure functions of the config, so memoising them cannot change
        # any RNG draw; mutate the config after first use only via
        # invalidate_cache().  Jitter parameters are globals of the
        # model, bound once here for the same reason.
        self._pair_cache: Dict[Tuple[int, int], Tuple[PairClass, float,
                                                      float]] = {}
        self._jitter_sigma = config.jitter_sigma
        self._jitter_max = config.jitter_max_factor

    def _pair_params(self, isp_a: ISP, isp_b: ISP) -> Tuple[PairClass,
                                                            float, float]:
        """Memoised ``(pair_class, loss_probability, path_bps)``."""
        key = (isp_a.asn, isp_b.asn)
        params = self._pair_cache.get(key)
        if params is None:
            pair_class = classify_pair(isp_a, isp_b)
            params = (pair_class, self.config.loss[pair_class],
                      self.config.path_bps[pair_class])
            self._pair_cache[key] = params
        return params

    def invalidate_cache(self) -> None:
        """Drop memoised per-pair parameters after a config change.

        Only needed when mutating ``config`` *after* the model has
        served traffic; construction-time customisation needs nothing.
        """
        self._pair_cache.clear()
        self._jitter_sigma = self.config.jitter_sigma
        self._jitter_max = self.config.jitter_max_factor

    # ------------------------------------------------------------------
    # Dynamic path-quality overrides (fault injection)
    # ------------------------------------------------------------------
    def push_override(self, pair_class: PairClass,
                      override: PathOverride) -> None:
        """Install a degradation episode on one path class."""
        self._overrides.setdefault(pair_class, []).append(override)

    def pop_override(self, pair_class: PairClass,
                     override: PathOverride) -> None:
        """Remove a previously pushed override (identity match)."""
        stack = self._overrides.get(pair_class)
        if not stack or override not in stack:
            raise ValueError(f"override not installed on {pair_class}")
        stack.remove(override)
        if not stack:
            del self._overrides[pair_class]

    def active_overrides(self, pair_class: PairClass) -> List[PathOverride]:
        return list(self._overrides.get(pair_class, ()))

    # ------------------------------------------------------------------
    # Stable pairwise structure
    # ------------------------------------------------------------------
    def base_rtt(self, addr_a: str, isp_a: ISP,
                 addr_b: str, isp_b: ISP) -> float:
        """Stable base round-trip time between two hosts, in seconds.

        Symmetric in its arguments, deterministic for a fixed master seed,
        and drawn from the pair class's :class:`RttBand`.
        """
        key = (addr_a, addr_b) if addr_a <= addr_b else (addr_b, addr_a)
        cached = self._base_rtt_cache.get(key)
        if cached is not None:
            return cached
        pair_class = self._pair_params(isp_a, isp_b)[0]
        band = self.config.bands[pair_class]
        pair_rng = self._router.fork(f"pair:{key[0]}|{key[1]}").stream("rtt")
        rtt = band.sample(pair_rng.gauss(0.0, 1.0))
        self._base_rtt_cache[key] = rtt
        return rtt

    def pair_class(self, isp_a: ISP, isp_b: ISP) -> PairClass:
        return self._pair_params(isp_a, isp_b)[0]

    # ------------------------------------------------------------------
    # Per-packet behaviour
    # ------------------------------------------------------------------
    def one_way_delay(self, addr_src: str, isp_src: ISP,
                      addr_dst: str, isp_dst: ISP,
                      wire_bytes: int = 0) -> float:
        """One-way delay for a single packet of ``wire_bytes`` (seconds).

        Propagation (jittered half-RTT) plus the path-throughput term:
        bulk datagrams cross slow long-haul paths far slower than tiny
        control packets.
        """
        base = self.base_rtt(addr_src, isp_src, addr_dst, isp_dst) / 2.0
        jitter = math.exp(self._jitter_rng.gauss(0.0, self._jitter_sigma))
        if jitter > self._jitter_max:
            jitter = self._jitter_max
        delay = base * jitter
        pair_class, _, rate = self._pair_params(isp_src, isp_dst)
        overrides = self._overrides.get(pair_class)
        if overrides:
            for override in overrides:
                delay *= override.latency_multiplier
        if wire_bytes > 0:
            if overrides:
                for override in overrides:
                    rate *= override.bandwidth_multiplier
            delay += wire_bytes * 8.0 / rate
        return delay

    def one_way_delays(self, items: List[tuple]) -> List[float]:
        """Batched :meth:`one_way_delay` for one send cohort.

        ``items`` holds ``(addr_src, isp_src, addr_dst, isp_dst,
        wire_bytes)`` tuples with ``wire_bytes > 0`` (transport always
        bills the datagram header).  Exactly one jitter draw per item,
        in item order, so the jitter stream advances identically to
        per-packet calls; base-RTT cache misses draw from their own
        per-pair forked streams and cannot perturb it.  The returned
        delays are bit-identical to the scalar path: numpy (when
        present, for cohorts worth the array round-trip) only performs
        exactly-rounded elementwise arithmetic, while ``math.exp`` and
        the gauss draws stay in Python either way.
        """
        gauss = self._jitter_rng.gauss
        sigma = self._jitter_sigma
        jitter_max = self._jitter_max
        exp = math.exp
        pair_params = self._pair_params
        if (_np is not None and not self._overrides
                and len(items) >= _NUMPY_MIN_BATCH):
            base_rtt = self.base_rtt
            bases = [base_rtt(addr_src, isp_src, addr_dst, isp_dst) / 2.0
                     for addr_src, isp_src, addr_dst, isp_dst, _wire in items]
            jitters = []
            for _ in items:
                jitter = exp(gauss(0.0, sigma))
                jitters.append(jitter_max if jitter > jitter_max else jitter)
            rates = [pair_params(isp_src, isp_dst)[2]
                     for _a, isp_src, _b, isp_dst, _wire in items]
            wires = [float(item[4]) for item in items]
            delays = (_np.asarray(bases) * _np.asarray(jitters)
                      + _np.asarray(wires) * 8.0 / _np.asarray(rates))
            return delays.tolist()
        overrides_by_class = self._overrides
        base_cache = self._base_rtt_cache
        pair_cache = self._pair_cache
        out = []
        append = out.append
        if not overrides_by_class:
            # Steady-state scalar loop, fused per item: the base-RTT
            # and pair-parameter caches are probed inline and the
            # jitter draw happens right after — legal because cache
            # misses draw from per-pair forked streams, never from the
            # jitter stream, so its per-item draw order is untouched.
            base_rtt = self.base_rtt
            for addr_src, isp_src, addr_dst, isp_dst, wire_bytes in items:
                key = ((addr_src, addr_dst) if addr_src <= addr_dst
                       else (addr_dst, addr_src))
                base = base_cache.get(key)
                if base is None:
                    base = base_rtt(addr_src, isp_src, addr_dst, isp_dst)
                jitter = exp(gauss(0.0, sigma))
                if jitter > jitter_max:
                    jitter = jitter_max
                params = pair_cache.get((isp_src.asn, isp_dst.asn))
                if params is None:
                    params = pair_params(isp_src, isp_dst)
                append(base * 0.5 * jitter
                       + wire_bytes * 8.0 / params[2])
            return out
        base_rtt = self.base_rtt
        for addr_src, isp_src, addr_dst, isp_dst, wire_bytes in items:
            base = base_rtt(addr_src, isp_src, addr_dst, isp_dst) / 2.0
            jitter = exp(gauss(0.0, sigma))
            if jitter > jitter_max:
                jitter = jitter_max
            delay = base * jitter
            pair_class, _, rate = pair_params(isp_src, isp_dst)
            overrides = overrides_by_class.get(pair_class)
            if overrides:
                for override in overrides:
                    delay *= override.latency_multiplier
            if wire_bytes > 0:
                if overrides:
                    for override in overrides:
                        rate *= override.bandwidth_multiplier
                delay += wire_bytes * 8.0 / rate
            append(delay)
        return out

    def is_lost(self, isp_src: ISP, isp_dst: ISP) -> bool:
        """Bernoulli loss draw for a packet on this path.

        Exactly one draw per call, override or not: degradation episodes
        adjust the probability, never the draw count.
        """
        pair_class, probability, _ = self._pair_params(isp_src, isp_dst)
        overrides = self._overrides.get(pair_class)
        if overrides:
            for override in overrides:
                probability = probability * override.loss_multiplier \
                    + override.extra_loss
            probability = min(probability, 1.0)
        return self._loss_rng.random() < probability

    def are_lost(self, pairs: List[tuple]) -> List[bool]:
        """Batched :meth:`is_lost` for one send cohort.

        ``pairs`` holds ``(isp_src, isp_dst)`` tuples.  Exactly one loss
        draw per pair, in pair order — the loss stream advances exactly
        as it would under per-packet calls.  The comparison is
        bit-exact under numpy too (``<`` on float64 has one defined
        answer), so both paths return identical verdicts.
        """
        pair_params = self._pair_params
        overrides_by_class = self._overrides
        random_draw = self._loss_rng.random
        if not overrides_by_class and len(pairs) < _NUMPY_MIN_BATCH:
            # Steady-state scalar loop, fused per pair: probability
            # lookup and loss draw together, one draw per pair in pair
            # order — the same stream positions as the phased path.
            pair_cache = self._pair_cache
            out = []
            append = out.append
            for isp_src, isp_dst in pairs:
                params = pair_cache.get((isp_src.asn, isp_dst.asn))
                if params is None:
                    params = pair_params(isp_src, isp_dst)
                append(random_draw() < params[1])
            return out
        probabilities = []
        for isp_src, isp_dst in pairs:
            pair_class, probability, _ = pair_params(isp_src, isp_dst)
            overrides = overrides_by_class.get(pair_class)
            if overrides:
                for override in overrides:
                    probability = (probability * override.loss_multiplier
                                   + override.extra_loss)
                probability = min(probability, 1.0)
            probabilities.append(probability)
        draws = [random_draw() for _ in probabilities]
        if _np is not None and len(pairs) >= _NUMPY_MIN_BATCH:
            lost = _np.asarray(draws) < _np.asarray(probabilities)
            return lost.tolist()
        return [draw < probability
                for draw, probability in zip(draws, probabilities)]

    def cache_size(self) -> int:
        """Number of pairwise base RTTs drawn so far (test/diagnostic)."""
        return len(self._base_rtt_cache)
