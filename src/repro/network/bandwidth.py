"""Access-link bandwidth model.

Response time in PPLive is not propagation alone: the paper observes that
peer-list replies slow down mid-session in popular channels because each
participating peer is serving more concurrent requesters ("the load on
each participating TELE peer increased and thus the replies took longer").
That effect comes from the *uplink*: a peer's replies and sub-piece
uploads share a serial, capacity-limited upstream pipe.

:class:`UplinkQueue` models the pipe as a FIFO serialiser: every outgoing
datagram occupies the link for ``size * 8 / rate`` seconds and waits
behind whatever is already queued.  When the backlog exceeds
``max_backlog`` seconds the datagram is dropped — which is how overloaded
peers come to silently ignore peer-list requests, another behaviour the
paper reports ("a non-trivial number of peer-list requests were not
answered").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AccessProfile:
    """Down/up capacity of one host's access link, in bits per second."""

    name: str
    down_bps: float
    up_bps: float
    #: Maximum tolerated uplink backlog in seconds before tail-drop.
    max_backlog: float = 2.5

    def __post_init__(self) -> None:
        if self.down_bps <= 0 or self.up_bps <= 0:
            raise ValueError("link rates must be positive")
        if self.max_backlog <= 0:
            raise ValueError("max_backlog must be positive")


#: 2008-era residential ADSL in China: ~2 Mbit/s down, 512 kbit/s up.
#: The shallow backlog keeps replies from arriving after the requester's
#: timeout (dropping early beats serving late).
ADSL = AccessProfile("adsl", down_bps=2_000_000, up_bps=512_000,
                     max_backlog=1.5)
#: Better cable/fibre residential line.
CABLE = AccessProfile("cable", down_bps=6_000_000, up_bps=1_000_000,
                      max_backlog=1.5)
#: University campus host (the paper's CERNET and Mason probes).
CAMPUS = AccessProfile("campus", down_bps=10_000_000, up_bps=4_000_000,
                       max_backlog=1.5)
#: Infrastructure node (bootstrap/tracker servers).
SERVER = AccessProfile("server", down_bps=100_000_000, up_bps=100_000_000,
                       max_backlog=10.0)


class UplinkQueue:
    """FIFO serialiser for one host's upstream link."""

    def __init__(self, profile: AccessProfile) -> None:
        self.profile = profile
        self._busy_until = 0.0
        self.bytes_sent = 0
        self.datagrams_sent = 0
        self.datagrams_dropped = 0

    def backlog(self, now: float) -> float:
        """Seconds of queued transmission ahead of a new arrival."""
        return max(0.0, self._busy_until - now)

    def utilization_hint(self, now: float) -> float:
        """Backlog normalised by the drop threshold, in [0, 1]."""
        return min(1.0, self.backlog(now) / self.profile.max_backlog)

    def enqueue(self, size_bytes: int, now: float) -> Optional[float]:
        """Admit a datagram; return its departure delay or ``None`` if dropped.

        The returned value is the delay from ``now`` until the last bit
        has left the host (queueing wait + serialisation).
        """
        if size_bytes < 0:
            raise ValueError(f"negative datagram size: {size_bytes}")
        wait = self.backlog(now)
        if wait > self.profile.max_backlog:
            self.datagrams_dropped += 1
            return None
        serialisation = size_bytes * 8.0 / self.profile.up_bps
        self._busy_until = now + wait + serialisation
        self.bytes_sent += size_bytes
        self.datagrams_sent += 1
        return wait + serialisation

    def reset(self, now: float = 0.0) -> None:
        """Forget the backlog (used when a peer restarts its session)."""
        self._busy_until = now
