"""IP-to-ASN mapping service (substrate S3).

The paper resolved every captured peer IP to its AS name with the Team
Cymru ``IP to ASN Mapping`` service and grouped ASes into the five ISP
categories.  This module provides the synthetic equivalent: a
longest-prefix-match table over the allocator's CIDR blocks, plus the
whois-style record format the real service returns.

The analysis pipeline only consumes :meth:`AsnDirectory.lookup`, so the
join between traffic and ISP category goes through exactly this lookup —
never through simulator-internal knowledge of which node owns an address.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .addressing import AddressAllocator
from .isp import ISP, ISPCatalog, ISPCategory


@dataclass(frozen=True)
class AsnRecord:
    """One row of a Team-Cymru-style lookup response."""

    address: str
    asn: int
    prefix: str
    as_name: str
    country: str
    category: ISPCategory

    def as_whois_line(self) -> str:
        """Render in the pipe-separated format of the real service."""
        return (f"{self.asn:<10}| {self.address:<15} | {self.prefix:<18}| "
                f"{self.country} | {self.as_name}")


class AsnDirectory:
    """Longest-prefix-match IP -> AS directory."""

    def __init__(self, catalog: ISPCatalog,
                 allocator: AddressAllocator) -> None:
        self._catalog = catalog
        # (network_int, prefix_len, network, isp) sorted for binary search
        self._table: List[Tuple[int, ipaddress.IPv4Network, ISP]] = []
        for isp in catalog:
            for prefix in allocator.prefixes_of(isp):
                net_int = int(prefix.network.network_address)
                self._table.append((net_int, prefix.network, isp))
        self._table.sort(key=lambda row: row[0])
        self._cache: Dict[str, Optional[AsnRecord]] = {}
        self.lookups_served = 0

    def lookup(self, address: str) -> Optional[AsnRecord]:
        """Resolve ``address``; ``None`` when no AS originates it."""
        self.lookups_served += 1
        if address in self._cache:
            return self._cache[address]
        record = self._resolve(address)
        self._cache[address] = record
        return record

    def category_of(self, address: str) -> Optional[ISPCategory]:
        """Shorthand used throughout the analysis pipeline."""
        record = self.lookup(address)
        return record.category if record is not None else None

    def bulk_lookup(self, addresses) -> List[Optional[AsnRecord]]:
        """Resolve many addresses (mirrors the service's bulk interface)."""
        return [self.lookup(address) for address in addresses]

    def _resolve(self, address: str) -> Optional[AsnRecord]:
        try:
            addr_int = int(ipaddress.IPv4Address(address))
        except ipaddress.AddressValueError:
            return None
        # Binary search for the greatest network address <= addr_int.
        lo, hi = 0, len(self._table)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._table[mid][0] <= addr_int:
                lo = mid + 1
            else:
                hi = mid
        index = lo - 1
        if index < 0:
            return None
        _, network, isp = self._table[index]
        if ipaddress.IPv4Address(addr_int) not in network:
            return None
        return AsnRecord(
            address=address,
            asn=isp.asn,
            prefix=str(network),
            as_name=isp.as_name,
            country=isp.country,
            category=isp.category,
        )
