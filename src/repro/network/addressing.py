"""IPv4 address-space allocation for the simulated Internet.

Each ISP is assigned one or more /16 prefixes; hosts draw sequential
addresses from their ISP's prefixes.  Using genuine dotted-quad strings
(rather than opaque node ids) matters because the measurement pipeline
reproduces the paper's methodology: peers are identified by IP in packet
traces and only later joined to their AS via the lookup service in
:mod:`repro.network.asn`.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, Iterator, List

from .isp import ISP, ISPCatalog


@dataclass(frozen=True, order=True)
class Prefix:
    """A CIDR block owned by one AS."""

    network: ipaddress.IPv4Network
    asn: int

    def __contains__(self, address: str) -> bool:
        return ipaddress.IPv4Address(address) in self.network

    def __str__(self) -> str:
        return f"{self.network} (AS{self.asn})"


class AddressExhaustedError(RuntimeError):
    """An ISP ran out of allocatable host addresses."""


class AddressAllocator:
    """Hands out unique IPv4 addresses, partitioned by ISP.

    The allocator derives each ISP's /16 blocks deterministically from its
    ASN so that address assignment is stable across runs and the blocks of
    different ISPs never collide: ISP *i* (in catalog iteration order) owns
    ``10.(16*i)…10.(16*i+blocks-1).x.y``-style blocks carved out of
    ``10.0.0.0/8`` extended into ``100.64.0.0/10``-like space.  We simply
    use successive /16s of the 4-billion address space starting at
    ``1.0.0.0`` which keeps addresses readable.
    """

    BLOCK_SIZE = 1 << 16  # one /16 per block
    FIRST_BLOCK = 1 << 24  # start at 1.0.0.0 to avoid 0.x reserved space

    def __init__(self, catalog: ISPCatalog,
                 blocks_per_isp: int = 4) -> None:
        if blocks_per_isp < 1:
            raise ValueError("blocks_per_isp must be >= 1")
        self.catalog = catalog
        self.blocks_per_isp = blocks_per_isp
        self._prefixes: Dict[int, List[Prefix]] = {}
        self._next_host: Dict[int, int] = {}
        self._allocated: Dict[str, int] = {}
        base_block = 0
        for isp in catalog:
            prefixes = []
            for block_index in range(blocks_per_isp):
                start = (self.FIRST_BLOCK
                         + (base_block + block_index) * self.BLOCK_SIZE)
                network = ipaddress.IPv4Network((start, 16))
                prefixes.append(Prefix(network, isp.asn))
            self._prefixes[isp.asn] = prefixes
            self._next_host[isp.asn] = 1  # skip the .0.0 network address
            base_block += blocks_per_isp

    def prefixes_of(self, isp: ISP) -> List[Prefix]:
        """CIDR blocks owned by ``isp``."""
        return list(self._prefixes[isp.asn])

    def all_prefixes(self) -> Iterator[Prefix]:
        for prefixes in self._prefixes.values():
            yield from prefixes

    def capacity(self, isp: ISP) -> int:
        """Total allocatable host addresses for ``isp``."""
        # minus network address in the first block, which we never assign
        return self.blocks_per_isp * self.BLOCK_SIZE - 1

    def allocate(self, isp: ISP) -> str:
        """Return the next unused address inside ``isp``'s space."""
        offset = self._next_host[isp.asn]
        if offset >= self.blocks_per_isp * self.BLOCK_SIZE:
            raise AddressExhaustedError(
                f"{isp.name} exhausted {self.capacity(isp)} addresses")
        block, host = divmod(offset, self.BLOCK_SIZE)
        prefix = self._prefixes[isp.asn][block]
        address = str(prefix.network.network_address + host)
        self._next_host[isp.asn] = offset + 1
        self._allocated[address] = isp.asn
        return address

    def asn_of(self, address: str) -> int:
        """ASN that was assigned ``address`` (allocation record, not lookup)."""
        try:
            return self._allocated[address]
        except KeyError:
            raise KeyError(f"address {address} was never allocated") from None

    def allocated_count(self) -> int:
        return len(self._allocated)

    def __contains__(self, address: str) -> bool:
        return address in self._allocated
