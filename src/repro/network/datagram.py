"""The unit of network transmission.

PPLive has used UDP for the bulk of its traffic since April 2007, so the
transport below is datagram-oriented: unreliable, unordered, fire-and-
forget.  A :class:`Datagram` carries an opaque ``payload`` (a protocol
message object) plus the metadata a packet sniffer can see on the wire.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from typing import Any

#: Fixed per-packet overhead: IPv4 header (20) + UDP header (8).
HEADER_BYTES = 28

_sequence = itertools.count(1)

#: ``slots=True`` needs Python 3.10; on 3.9 datagrams simply keep their
#: ``__dict__`` (slower attribute loads, identical behaviour).
_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


@dataclass(frozen=True, **_SLOTS)
class Datagram:
    """One UDP datagram in flight.

    Slotted: datagrams are the most-instantiated object in the
    simulator and their attributes are read on every hot path (deliver,
    taps, flow accounting), where slot loads beat ``__dict__`` loads.
    """

    src: str
    dst: str
    payload: Any
    payload_bytes: int
    sent_at: float
    #: Globally unique id, assigned at send time; lets capture code match
    #: the send-side and receive-side observation of the same packet.
    packet_id: int = field(default_factory=lambda: next(_sequence))

    @property
    def wire_bytes(self) -> int:
        """Total on-the-wire size including IP/UDP headers."""
        return self.payload_bytes + HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self.payload).__name__
        return (f"<Datagram #{self.packet_id} {self.src}->{self.dst} "
                f"{kind} {self.wire_bytes}B t={self.sent_at:.4f}>")
