"""repro: a reproduction of "A Case Study of Traffic Locality in Internet
P2P Live Streaming Systems" (ICDCS 2009).

The package builds the paper's measured system as a deterministic
discrete-event simulation — a PPLive-style live-streaming network over
an ISP-aware Internet underlay — plus the authors' entire measurement
and analysis pipeline (probe-host packet capture, IP->ASN resolution,
request/reply matching, locality and rank-distribution statistics).

Quick start::

    from repro import ScenarioConfig, run_session, locality_breakdown

    result = run_session(ScenarioConfig(population=60, duration=600.0))
    probe = result.probe()
    breakdown = locality_breakdown(probe.trace, probe.report.data,
                                   result.directory, result.infrastructure)
    print(f"traffic locality: {breakdown.locality:.0%}")

Sub-packages: ``sim`` (event engine), ``network`` (underlay),
``streaming`` (video substrate), ``protocol`` (the PPLive-style client
and servers), ``baselines`` (alternative peer-selection policies),
``capture`` (sniffing), ``analysis`` + ``stats`` (the paper's metrics),
``workload`` (populations, churn, scenarios, the 4-week campaign) and
``experiments`` (one driver per table/figure).
"""

from .analysis import (LocalityBreakdown, aggregate_metrics,
                       aggregate_sessions,
                       analyze_contributions, analyze_requests_vs_rtt,
                       analyze_session_overlay, data_response_series,
                       locality_breakdown, locality_timeline,
                       peerlist_response_series, traffic_locality)
from .baselines import (BiasedNeighborPolicy, IspOracle, OnoPolicy,
                        P4PPolicy, ProximityOracle, TrackerOnlyRandomPolicy)
from .capture import ProbeSniffer, TraceStore, match_all
from .network import (ISPCategory, Internet, build_internet,
                      default_isp_catalog)
from .obs import (EngineProfiler, Instrumentation, JsonlSink, LoggingSink,
                  MetricsRegistry, NullSink, RingSink, TraceSink,
                  read_metrics_jsonl, read_trace_jsonl, strip_wall_metrics,
                  write_metrics_csv, write_metrics_jsonl)
from .parallel import (Job, JobFailure, run_jobs, run_seed_sweep)
from .protocol import (PPLivePeer, PPLiveReferralPolicy, ProtocolConfig,
                       TrackerServer)
from .sim import Simulator
from .stats import (fit_stretched_exponential, fit_zipf,
                    top_fraction_share)
from .streaming import ChunkGeometry, LiveChannel, Popularity
from .workload import (CampaignConfig, ChurnModel, PopulationMix,
                       ScenarioConfig, SessionResult, SessionScenario,
                       SyntheticWorkloadModel, popular_channel_mix,
                       run_campaign, run_session, unpopular_channel_mix)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engine / underlay
    "Simulator", "Internet", "build_internet", "default_isp_catalog",
    "ISPCategory",
    # protocol
    "PPLivePeer", "ProtocolConfig", "PPLiveReferralPolicy", "TrackerServer",
    # streaming
    "ChunkGeometry", "LiveChannel", "Popularity",
    # baselines
    "TrackerOnlyRandomPolicy", "BiasedNeighborPolicy", "OnoPolicy",
    "P4PPolicy", "IspOracle", "ProximityOracle",
    # capture & analysis
    "ProbeSniffer", "TraceStore", "match_all",
    "locality_breakdown", "LocalityBreakdown", "traffic_locality",
    "peerlist_response_series", "data_response_series",
    "analyze_contributions", "analyze_requests_vs_rtt",
    "analyze_session_overlay", "locality_timeline", "aggregate_sessions",
    "aggregate_metrics",
    # parallel execution
    "Job", "JobFailure", "run_jobs", "run_seed_sweep",
    # stats
    "fit_stretched_exponential", "fit_zipf", "top_fraction_share",
    # observability
    "Instrumentation", "MetricsRegistry", "EngineProfiler",
    "TraceSink", "NullSink", "JsonlSink", "RingSink", "LoggingSink",
    "write_metrics_jsonl", "write_metrics_csv", "read_metrics_jsonl",
    "read_trace_jsonl", "strip_wall_metrics",
    # workload
    "ScenarioConfig", "SessionScenario", "SessionResult", "run_session",
    "PopulationMix", "popular_channel_mix", "unpopular_channel_mix",
    "ChurnModel", "CampaignConfig", "run_campaign",
    "SyntheticWorkloadModel",
]
