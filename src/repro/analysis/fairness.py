"""Contribution fairness across the swarm.

The paper's Figures 11-14 show strong concentration from the *probe's*
point of view (top 10 % of its neighbors upload ~70 % of its bytes).
This module asks the complementary, population-wide question: how
unequally is the upload burden shared across all peers, and who
free-rides?  Useful for the incentive discussions the paper touches on
when contrasting PPLive with BitTorrent's tit-for-tat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini coefficient of non-negative ``values`` (0 = equal, →1 = one
    contributor does everything)."""
    if not values:
        raise ValueError("gini of no values")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    ordered = sorted(values)
    n = len(ordered)
    total = sum(ordered)
    if total == 0:
        return 0.0
    # Standard rank formula: G = (2*sum(i*x_i)/(n*sum(x)) - (n+1)/n).
    weighted = sum((index + 1) * value
                   for index, value in enumerate(ordered))
    return 2.0 * weighted / (n * total) - (n + 1.0) / n


@dataclass
class PeerFairness:
    """Upload/download balance of one peer."""

    address: str
    uploaded_bytes: int
    downloaded_bytes: int

    @property
    def share_ratio(self) -> Optional[float]:
        """Upload/download ratio (None when nothing was downloaded)."""
        if self.downloaded_bytes == 0:
            return None
        return self.uploaded_bytes / self.downloaded_bytes


@dataclass
class FairnessReport:
    """Population-wide contribution statistics."""

    peers: List[PeerFairness]
    upload_gini: float
    #: Fraction of peers that uploaded less than 10% of what they
    #: downloaded (free-riders in the BitTorrent sense).
    free_rider_fraction: float
    #: Fraction of total upload provided by the top 10% of uploaders.
    top10_upload_share: float

    def render(self) -> str:
        lines = [
            f"contribution fairness over {len(self.peers)} peers:",
            f"  upload Gini coefficient: {self.upload_gini:.3f}",
            f"  free-riders (<10% share ratio): "
            f"{self.free_rider_fraction:.1%}",
            f"  top 10% of uploaders carry "
            f"{self.top10_upload_share:.1%} of the upload",
        ]
        return "\n".join(lines)


def analyze_fairness(peers: Iterable) -> FairnessReport:
    """Compute the fairness report from peer objects.

    Accepts anything exposing ``address``, ``bytes_uploaded`` and a
    ``buffer`` with ``bytes_received`` (as :class:`PPLivePeer` does).
    """
    rows: List[PeerFairness] = []
    for peer in peers:
        buffer = getattr(peer, "buffer", None)
        downloaded = buffer.bytes_received if buffer is not None else 0
        rows.append(PeerFairness(
            address=peer.address,
            uploaded_bytes=getattr(peer, "bytes_uploaded", 0),
            downloaded_bytes=downloaded))
    if not rows:
        raise ValueError("no peers to analyse")

    uploads = [r.uploaded_bytes for r in rows]
    gini = gini_coefficient(uploads)

    ratios = [r.share_ratio for r in rows]
    consumers = [r for r, ratio in zip(rows, ratios) if ratio is not None]
    free_riders = sum(1 for r in consumers
                      if r.share_ratio is not None and r.share_ratio < 0.1)
    free_rider_fraction = (free_riders / len(consumers)
                           if consumers else 0.0)

    from ..stats.cdf import top_fraction_share
    total_upload = sum(uploads)
    top10 = (top_fraction_share(uploads, 0.10)
             if total_upload > 0 else 0.0)

    return FairnessReport(peers=rows, upload_gini=gini,
                          free_rider_fraction=free_rider_fraction,
                          top10_upload_share=top10)


def session_fairness(session_result) -> FairnessReport:
    """Fairness report over a finished session's surviving population."""
    peers = list(session_result.population.active)
    peers.extend(p.peer for p in session_result.probes.values())
    return analyze_fairness(peers)
