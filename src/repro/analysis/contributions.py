"""Per-neighbor request/contribution analysis (Figures 11-14).

From the matched data transactions of one probe session:

* the distinct peers actually connected for data transfer, by ISP,
* the per-peer data-request rank distribution, fitted with both the
  stretched-exponential and Zipf models,
* the per-peer byte-contribution CDF and the top-10 % share.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..capture.matching import DataTransaction
from ..network.asn import AsnDirectory
from ..stats.cdf import contribution_cdf, top_fraction_share
from ..stats.se import StretchedExponentialFit, fit_stretched_exponential
from ..stats.zipf import ZipfFit, fit_zipf


def requests_per_peer(transactions: Sequence[DataTransaction],
                      infrastructure: Set[str] = frozenset()
                      ) -> Dict[str, int]:
    """Number of matched data transactions per remote peer."""
    counts: Counter = Counter()
    for txn in transactions:
        if txn.remote not in infrastructure:
            counts[txn.remote] += 1
    return dict(counts)


def bytes_per_peer(transactions: Sequence[DataTransaction],
                   infrastructure: Set[str] = frozenset()
                   ) -> Dict[str, int]:
    """Downloaded payload bytes per remote peer."""
    totals: Counter = Counter()
    for txn in transactions:
        if txn.remote not in infrastructure:
            totals[txn.remote] += txn.payload_bytes
    return dict(totals)


def connected_peers_by_isp(transactions: Sequence[DataTransaction],
                           directory: AsnDirectory,
                           infrastructure: Set[str] = frozenset()
                           ) -> Counter:
    """Figure 11(a): distinct data-transfer peers per ISP category."""
    counts: Counter = Counter()
    for remote in requests_per_peer(transactions, infrastructure):
        category = directory.category_of(remote)
        if category is not None:
            counts[category] += 1
    return counts


@dataclass
class ContributionAnalysis:
    """The full panel set of one of Figures 11-14."""

    #: Distinct peers connected for data transfer.
    connected_unique: int
    #: Distinct connected peers per ISP category.
    connected_by_isp: Counter
    #: Per-peer request counts, descending.
    request_ranks: List[int]
    #: SE fit of the request rank distribution.
    se_fit: Optional[StretchedExponentialFit]
    #: Zipf fit of the same data (for the does-not-fit comparison).
    zipf_fit: Optional[ZipfFit]
    #: (ranks, cumulative byte share) of the contribution CDF.
    contribution_curve: Optional[Tuple[np.ndarray, np.ndarray]]
    #: Byte share of the top 10 % of connected peers.
    top10_byte_share: Optional[float]
    #: Request share of the top 10 % of connected peers.
    top10_request_share: Optional[float]


def analyze_contributions(transactions: Sequence[DataTransaction],
                          directory: AsnDirectory,
                          infrastructure: Set[str] = frozenset()
                          ) -> ContributionAnalysis:
    """Compute everything Figures 11-14 report for one session."""
    request_counts = requests_per_peer(transactions, infrastructure)
    byte_counts = bytes_per_peer(transactions, infrastructure)
    ranks = sorted(request_counts.values(), reverse=True)

    se_fit = None
    zipf_fit = None
    if len([v for v in ranks if v > 0]) >= 3:
        se_fit = fit_stretched_exponential(ranks)
        zipf_fit = fit_zipf(ranks)

    curve = None
    top10_bytes = None
    top10_requests = None
    byte_values = [v for v in byte_counts.values()]
    if byte_values and sum(byte_values) > 0:
        curve = contribution_cdf(byte_values)
        top10_bytes = top_fraction_share(byte_values, 0.10)
    if ranks and sum(ranks) > 0:
        top10_requests = top_fraction_share(ranks, 0.10)

    return ContributionAnalysis(
        connected_unique=len(request_counts),
        connected_by_isp=connected_peers_by_isp(transactions, directory,
                                                infrastructure),
        request_ranks=ranks,
        se_fit=se_fit,
        zipf_fit=zipf_fit,
        contribution_curve=curve,
        top10_byte_share=top10_bytes,
        top10_request_share=top10_requests,
    )
