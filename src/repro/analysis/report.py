"""Plain-text rendering of analysis results.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep the formatting consistent and
terminal-friendly (no plotting dependencies).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Sequence

from .locality import CATEGORY_ORDER


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an ASCII table with right-padded columns."""
    cells = [[str(h) for h in headers]]
    cells.extend([str(value) for value in row] for row in rows)
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        line = "  ".join(value.ljust(width)
                         for value, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_category_counter(counts: Counter,
                            as_percent: bool = False) -> str:
    """One-line ISP-category breakdown in the paper's display order."""
    total = sum(counts.values())
    parts = []
    for category in CATEGORY_ORDER:
        value = counts.get(category, 0)
        if as_percent and total:
            parts.append(f"{category}={100.0 * value / total:.1f}%")
        else:
            parts.append(f"{category}={value}")
    return "  ".join(parts)


def percentage(numerator: float, denominator: float) -> str:
    """Format a share as a percent string, guarding the zero case."""
    if denominator == 0:
        return "n/a"
    return f"{100.0 * numerator / denominator:.1f}%"


def format_seconds(value: Optional[float]) -> str:
    """Format a response-time average as the paper does (4 decimals)."""
    if value is None:
        return "n/a"
    return f"{value:.4f}"


def counter_rows(counts: Counter) -> List[List[object]]:
    """Counter -> table rows in category display order."""
    total = sum(counts.values())
    rows: List[List[object]] = []
    for category in CATEGORY_ORDER:
        value = counts.get(category, 0)
        rows.append([str(category), value, percentage(value, total)])
    return rows


def bullet_list(items: Iterable[str], indent: str = "  - ") -> str:
    return "\n".join(f"{indent}{item}" for item in items)
