"""Overlay-graph structure analysis.

The paper explains PPLive's locality through an iterative "triangle
construction" (Leskovec et al.): neighbor referral plus latency racing
self-organises peers into "highly connected clusters ... highly
localized at the ISP level".  This module quantifies that claim on a
simulation snapshot:

* **intra-ISP edge fraction** — how many overlay links stay inside one
  ISP, compared with the fraction expected if the same degree sequence
  were wired ignoring ISPs (the null model),
* **average clustering coefficient** — triangle density (referral creates
  triangles: I connect to my neighbor's neighbors),
* **ISP assortativity** — Newman's attribute assortativity over the ISP
  category label,
* **ISP modularity** — how well the ISP partition explains the overlay's
  community structure.

Built on ``networkx``; consumes a :class:`SessionResult` (or any iterable
of peers with ``address``/``neighbors``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

import networkx as nx

from ..network.asn import AsnDirectory
from ..network.isp import ISPCategory


def overlay_graph(peers: Iterable, directory: AsnDirectory,
                  infrastructure: Set[str] = frozenset()) -> nx.Graph:
    """Snapshot the neighbor relationships as an undirected graph.

    Nodes are peer addresses annotated with their ISP category; an edge
    exists when either endpoint lists the other as a neighbor.
    Infrastructure addresses are excluded.
    """
    graph = nx.Graph()
    peer_list = [p for p in peers
                 if getattr(p, "address", None) not in infrastructure]
    for peer in peer_list:
        category = directory.category_of(peer.address)
        if category is None:
            continue
        graph.add_node(peer.address, isp=category)
    addresses = set(graph.nodes)
    for peer in peer_list:
        if peer.address not in addresses:
            continue
        for neighbor in peer.neighbors.addresses():
            if neighbor in addresses:
                graph.add_edge(peer.address, neighbor)
    return graph


def intra_isp_edge_fraction(graph: nx.Graph) -> Optional[float]:
    """Fraction of edges whose endpoints share an ISP category."""
    if graph.number_of_edges() == 0:
        return None
    same = sum(1 for u, v in graph.edges
               if graph.nodes[u]["isp"] is graph.nodes[v]["isp"])
    return same / graph.number_of_edges()


def expected_intra_fraction(graph: nx.Graph) -> Optional[float]:
    """Degree-weighted null expectation of the intra-ISP edge fraction.

    In a configuration-model rewiring, the probability that an edge stays
    inside category ``c`` is ``(d_c / 2m)^2`` summed over categories,
    where ``d_c`` is the total degree of category ``c`` — the same
    quantity modularity is measured against.
    """
    total_degree = sum(d for _n, d in graph.degree)
    if total_degree == 0:
        return None
    by_category: Dict[ISPCategory, int] = {}
    for node, degree in graph.degree:
        category = graph.nodes[node]["isp"]
        by_category[category] = by_category.get(category, 0) + degree
    return sum((d / total_degree) ** 2 for d in by_category.values())


def isp_modularity(graph: nx.Graph) -> Optional[float]:
    """Modularity of the ISP-category partition."""
    if graph.number_of_edges() == 0:
        return None
    communities: Dict[ISPCategory, Set[str]] = {}
    for node in graph.nodes:
        communities.setdefault(graph.nodes[node]["isp"], set()).add(node)
    return nx.algorithms.community.modularity(graph,
                                              communities.values())


def isp_assortativity(graph: nx.Graph) -> Optional[float]:
    """Newman attribute assortativity over the ISP label."""
    if graph.number_of_edges() == 0:
        return None
    try:
        return float(nx.attribute_assortativity_coefficient(graph, "isp"))
    except (ZeroDivisionError, ValueError):
        return None


@dataclass
class OverlayAnalysis:
    """Structural summary of one overlay snapshot."""

    nodes: int
    edges: int
    intra_isp_fraction: Optional[float]
    expected_intra_fraction: Optional[float]
    clustering_coefficient: Optional[float]
    assortativity: Optional[float]
    modularity: Optional[float]

    @property
    def locality_lift(self) -> Optional[float]:
        """Observed over expected intra-ISP edge fraction (>1 = clustered)."""
        if (self.intra_isp_fraction is None
                or not self.expected_intra_fraction):
            return None
        return self.intra_isp_fraction / self.expected_intra_fraction

    def render(self) -> str:
        def fmt(value, digits=3):
            return "n/a" if value is None else f"{value:.{digits}f}"

        lines = [
            "overlay snapshot:",
            f"  nodes: {self.nodes}, edges: {self.edges}",
            f"  intra-ISP edge fraction: {fmt(self.intra_isp_fraction)} "
            f"(null model: {fmt(self.expected_intra_fraction)}, "
            f"lift: {fmt(self.locality_lift, 2)}x)",
            f"  clustering coefficient: {fmt(self.clustering_coefficient)}",
            f"  ISP assortativity: {fmt(self.assortativity)}",
            f"  ISP modularity: {fmt(self.modularity)}",
        ]
        return "\n".join(lines)


def analyze_overlay(peers: Iterable, directory: AsnDirectory,
                    infrastructure: Set[str] = frozenset()
                    ) -> OverlayAnalysis:
    """Compute the full structural summary for one peer population."""
    graph = overlay_graph(peers, directory, infrastructure)
    clustering = (nx.average_clustering(graph)
                  if graph.number_of_nodes() > 0 else None)
    return OverlayAnalysis(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        intra_isp_fraction=intra_isp_edge_fraction(graph),
        expected_intra_fraction=expected_intra_fraction(graph),
        clustering_coefficient=clustering,
        assortativity=isp_assortativity(graph),
        modularity=isp_modularity(graph),
    )


def analyze_session_overlay(session_result) -> OverlayAnalysis:
    """Overlay analysis of a finished session's surviving population."""
    peers = list(session_result.population.active)
    peers.extend(p.peer for p in session_result.probes.values())
    return analyze_overlay(peers, session_result.directory,
                           session_result.infrastructure)
