"""Response-time analysis (Figures 7-10 and Table 1).

Peer-list and data response times, grouped by the replier's ISP the way
the paper does: TELE / CNC / OTHER, where OTHER merges CER, OtherCN and
Foreign "since there are not many CER peers involved".

The paper counts *all* response-time values in the averages but only
plots values below 3 seconds "for better visual comparisons" —
:func:`clipped_series` provides the plotted view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..capture.matching import DataTransaction, PeerListTransaction
from ..network.asn import AsnDirectory
from ..network.isp import ResponseGroup, response_group

#: The paper's 3-second display cut-off.
DISPLAY_CLIP_SECONDS = 3.0


@dataclass
class ResponseSeries:
    """Response times from one replier group, in request order."""

    group: ResponseGroup
    times: List[float] = field(default_factory=list)
    request_times: List[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.times)

    @property
    def average(self) -> Optional[float]:
        """Mean over *all* values, as the paper computes it."""
        if not self.times:
            return None
        return sum(self.times) / len(self.times)

    def clipped(self, clip: float = DISPLAY_CLIP_SECONDS) -> List[float]:
        """Only values below ``clip`` (the plotted subset)."""
        return [t for t in self.times if t < clip]


def _group_of(directory: AsnDirectory,
              address: str) -> Optional[ResponseGroup]:
    category = directory.category_of(address)
    if category is None:
        return None
    return response_group(category)


def peerlist_response_series(
        transactions: Sequence[PeerListTransaction],
        directory: AsnDirectory,
        infrastructure: frozenset = frozenset()
) -> Dict[ResponseGroup, ResponseSeries]:
    """Figures 7-10: peer-list response times by replier group."""
    series = {g: ResponseSeries(group=g) for g in ResponseGroup}
    for txn in sorted(transactions, key=lambda t: t.request_time):
        if txn.remote in infrastructure:
            continue
        group = _group_of(directory, txn.remote)
        if group is None:
            continue
        series[group].times.append(txn.response_time)
        series[group].request_times.append(txn.request_time)
    return series


def data_response_series(
        transactions: Sequence[DataTransaction],
        directory: AsnDirectory,
        infrastructure: frozenset = frozenset()
) -> Dict[ResponseGroup, ResponseSeries]:
    """Table 1 input: data response times by replier group."""
    series = {g: ResponseSeries(group=g) for g in ResponseGroup}
    for txn in sorted(transactions, key=lambda t: t.request_time):
        if txn.remote in infrastructure:
            continue
        group = _group_of(directory, txn.remote)
        if group is None:
            continue
        series[group].times.append(txn.response_time)
        series[group].request_times.append(txn.request_time)
    return series


def average_response_by_group(
        series: Dict[ResponseGroup, ResponseSeries]
) -> Dict[ResponseGroup, Optional[float]]:
    """Collapse series to the per-group averages the paper tabulates."""
    return {group: s.average for group, s in series.items()}


def fastest_group(series: Dict[ResponseGroup, ResponseSeries]
                  ) -> Optional[ResponseGroup]:
    """The group with the smallest average response time, if any."""
    best_group = None
    best_average = None
    for group, s in series.items():
        average = s.average
        if average is None:
            continue
        if best_average is None or average < best_average:
            best_average = average
            best_group = group
    return best_group
