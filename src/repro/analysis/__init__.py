"""Trace analysis (S8): locality, response times, contributions, RTT."""

from .aggregate import (AggregateResult, SessionMetrics,
                        aggregate_metrics, aggregate_sessions,
                        session_metrics)
from .contributions import (ContributionAnalysis, analyze_contributions,
                            bytes_per_peer, connected_peers_by_isp,
                            requests_per_peer)
from .fairness import (FairnessReport, PeerFairness, analyze_fairness,
                       gini_coefficient, session_fairness)
from .locality import (CATEGORY_ORDER, LocalityBreakdown, bytes_by_isp,
                       delivered_bytes_by_as_pair, locality_breakdown,
                       own_isp_share_of_replies, returned_by_source,
                       returned_peer_counts, traffic_locality,
                       transit_byte_share, transmissions_by_isp,
                       unique_listed_peers)
from .report import (bullet_list, counter_rows, format_category_counter,
                     format_seconds, format_table, percentage)
from .overlay import (OverlayAnalysis, analyze_overlay,
                      analyze_session_overlay, expected_intra_fraction,
                      intra_isp_edge_fraction, isp_assortativity,
                      isp_modularity, overlay_graph)
from .response import (DISPLAY_CLIP_SECONDS, ResponseSeries,
                       average_response_by_group, data_response_series,
                       fastest_group, peerlist_response_series)
from .rtt import RttAnalysis, analyze_requests_vs_rtt, rtt_estimates
from .timeline import TimelinePoint, locality_timeline, timeline_summary

__all__ = [
    "LocalityBreakdown", "locality_breakdown", "returned_peer_counts",
    "returned_by_source", "own_isp_share_of_replies", "transmissions_by_isp",
    "bytes_by_isp", "traffic_locality", "unique_listed_peers",
    "CATEGORY_ORDER",
    "transit_byte_share", "delivered_bytes_by_as_pair",
    "ResponseSeries", "peerlist_response_series", "data_response_series",
    "average_response_by_group", "fastest_group", "DISPLAY_CLIP_SECONDS",
    "ContributionAnalysis", "analyze_contributions", "requests_per_peer",
    "bytes_per_peer", "connected_peers_by_isp",
    "RttAnalysis", "analyze_requests_vs_rtt", "rtt_estimates",
    "OverlayAnalysis", "analyze_overlay", "analyze_session_overlay",
    "overlay_graph", "intra_isp_edge_fraction", "expected_intra_fraction",
    "isp_assortativity", "isp_modularity",
    "TimelinePoint", "locality_timeline", "timeline_summary",
    "AggregateResult", "SessionMetrics", "aggregate_sessions",
    "aggregate_metrics", "session_metrics",
    "FairnessReport", "PeerFairness", "analyze_fairness",
    "gini_coefficient", "session_fairness",
    "format_table", "format_category_counter", "percentage",
    "format_seconds", "counter_rows", "bullet_list",
]
