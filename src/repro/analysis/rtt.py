"""Request-count vs RTT analysis (Figures 15-18).

"Since what we extract are application level latency, we take the
minimum of them as the RTT estimation" — per remote peer, the RTT
estimate is the minimum observed data-response time.  Peers are then
ranked by the number of data requests they received from the probe, and
the paper reports (a) the least-squares fit of log(RTT) against rank and
(b) the correlation coefficient between log(#requests) and log(RTT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..capture.matching import DataTransaction
from ..stats.correlation import log_linear_fit, log_log_correlation
from ..stats.fitting import LinearFit
from .contributions import requests_per_peer


def rtt_estimates(transactions: Sequence[DataTransaction],
                  infrastructure: Set[str] = frozenset()
                  ) -> Dict[str, float]:
    """Per-remote RTT estimate: the minimum application response time."""
    estimates: Dict[str, float] = {}
    for txn in transactions:
        if txn.remote in infrastructure:
            continue
        current = estimates.get(txn.remote)
        if current is None or txn.response_time < current:
            estimates[txn.remote] = txn.response_time
    return estimates


@dataclass
class RttAnalysis:
    """One of Figures 15-18: ranked requests vs RTT."""

    #: Remote peers ordered by descending request count.
    peers: List[str]
    #: Request count per rank position.
    request_counts: List[int]
    #: RTT estimate per rank position (seconds).
    rtts: List[float]
    #: Correlation of log(#requests) vs log(RTT) — negative means the
    #: most-used peers are the nearest.
    correlation: Optional[float]
    #: Least-squares fit of log(RTT) against rank.
    rtt_trend: Optional[LinearFit]


def analyze_requests_vs_rtt(transactions: Sequence[DataTransaction],
                            infrastructure: Set[str] = frozenset()
                            ) -> RttAnalysis:
    """Build the Figures 15-18 panel from one session's transactions."""
    counts = requests_per_peer(transactions, infrastructure)
    estimates = rtt_estimates(transactions, infrastructure)
    # Order by descending request count; tie-break by address so the
    # ranking is deterministic.
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    peers = [address for address, _count in ordered]
    request_counts = [count for _address, count in ordered]
    rtts = [estimates[address] for address in peers]

    correlation = None
    trend = None
    positive_pairs = sum(1 for c, r in zip(request_counts, rtts)
                         if c > 0 and r > 0)
    if positive_pairs >= 2:
        correlation = log_log_correlation(request_counts, rtts)
        ranks = list(range(1, len(peers) + 1))
        trend = log_linear_fit(ranks, rtts)
    return RttAnalysis(peers=peers, request_counts=request_counts,
                       rtts=rtts, correlation=correlation, rtt_trend=trend)
