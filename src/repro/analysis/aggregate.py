"""Cross-seed aggregation of session metrics.

A single simulated session is one draw from the model; conclusions about
shapes (who wins, by how much) should rest on several seeds.  This
module runs a scenario across seeds and summarises the headline metrics
with means and bootstrap confidence intervals.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from ..checkpoint import read_artifact, write_artifact
from ..parallel.sweeps import run_seed_sweep
from ..stats.bootstrap import BootstrapEstimate, bootstrap_mean
from ..workload.scenario import ScenarioConfig, SessionResult
from .contributions import analyze_contributions
from .locality import traffic_locality
from .rtt import analyze_requests_vs_rtt

#: Artifact kind for persisted per-session metrics (the streaming
#: aggregation input; see :class:`StreamingAggregator`).
KIND_METRICS = "session-metrics"


@dataclass
class SessionMetrics:
    """Headline metrics of one probe session."""

    seed: int
    locality: float
    data_transactions: int
    top10_byte_share: Optional[float]
    rtt_correlation: Optional[float]
    probe_continuity: float


@dataclass
class AggregateResult:
    """Per-seed metrics plus cross-seed summaries."""

    per_seed: List[SessionMetrics]
    locality_mean: BootstrapEstimate
    top10_mean: Optional[BootstrapEstimate]
    correlation_mean: Optional[BootstrapEstimate]

    def render(self) -> str:
        lines = [f"aggregate over {len(self.per_seed)} seeds:"]
        for metrics in self.per_seed:
            corr = ("n/a" if metrics.rtt_correlation is None
                    else f"{metrics.rtt_correlation:+.2f}")
            top10 = ("n/a" if metrics.top10_byte_share is None
                     else f"{metrics.top10_byte_share:.0%}")
            lines.append(
                f"  seed {metrics.seed}: locality "
                f"{metrics.locality:.1%}, top10 {top10}, "
                f"rtt-corr {corr}, continuity "
                f"{metrics.probe_continuity:.2f}")
        lines.append(f"  locality mean: {self.locality_mean}")
        if self.top10_mean is not None:
            lines.append(f"  top10 mean:    {self.top10_mean}")
        if self.correlation_mean is not None:
            lines.append(f"  rtt-corr mean: {self.correlation_mean}")
        return "\n".join(lines)


def session_metrics(result: SessionResult,
                    probe_name: Optional[str] = None) -> SessionMetrics:
    """Extract the headline metrics from one finished session."""
    probe = result.probe(probe_name)
    directory = result.directory
    infrastructure = result.infrastructure
    category = directory.category_of(probe.address)
    contributions = analyze_contributions(probe.report.data, directory,
                                          infrastructure)
    rtt = analyze_requests_vs_rtt(probe.report.data, infrastructure)
    player = probe.peer.player
    return SessionMetrics(
        seed=result.config.seed,
        locality=traffic_locality(probe.report.data, directory, category,
                                  infrastructure),
        data_transactions=len(probe.report.data),
        top10_byte_share=contributions.top10_byte_share,
        rtt_correlation=rtt.correlation,
        probe_continuity=(player.continuity_index
                          if player is not None else 0.0),
    )


def aggregate_metrics(per_seed: Sequence[SessionMetrics],
                      resamples: int = 400) -> AggregateResult:
    """Summarise already-computed per-seed metrics with bootstrap CIs."""
    if not per_seed:
        raise ValueError("need metrics for at least one seed")
    per_seed = list(per_seed)
    rng = random.Random(len(per_seed) * 7919 + per_seed[0].seed)
    localities = [m.locality for m in per_seed]
    locality_mean = bootstrap_mean(localities, rng, resamples)

    top10_values = [m.top10_byte_share for m in per_seed
                    if m.top10_byte_share is not None]
    top10_mean = (bootstrap_mean(top10_values, rng, resamples)
                  if top10_values else None)

    correlations = [m.rtt_correlation for m in per_seed
                    if m.rtt_correlation is not None]
    correlation_mean = (bootstrap_mean(correlations, rng, resamples)
                        if correlations else None)

    return AggregateResult(per_seed=per_seed,
                           locality_mean=locality_mean,
                           top10_mean=top10_mean,
                           correlation_mean=correlation_mean)


def write_metrics_artifact(path: Union[str, Path],
                           metrics: Sequence[SessionMetrics]) -> None:
    """Persist per-session metrics as one atomic, digest-stamped
    artifact (the streaming aggregation's on-disk interchange unit)."""
    write_artifact(Path(path), KIND_METRICS,
                   {"metrics": [asdict(m) for m in metrics]})


def read_metrics_artifact(path: Union[str, Path]) -> List[SessionMetrics]:
    """Load and validate one metrics artifact written by
    :func:`write_metrics_artifact`."""
    payload = read_artifact(Path(path), KIND_METRICS)
    return [SessionMetrics(**fields) for fields in payload["metrics"]]


class StreamingAggregator:
    """Incremental, constant-memory merge of per-session metrics.

    A month-scale campaign produces one artifact per day; folding them
    through this class keeps exactly one artifact in memory at a time
    and retains only the compact :class:`SessionMetrics` rows (a few
    floats each) — RSS stays flat no matter how large the individual
    artifacts are.  :meth:`result` delegates to
    :func:`aggregate_metrics`, so the streamed fold reproduces the
    one-shot aggregation *exactly*, bootstrap draws included.
    """

    def __init__(self, resamples: int = 400) -> None:
        self._resamples = resamples
        self._per_seed: List[SessionMetrics] = []

    def __len__(self) -> int:
        return len(self._per_seed)

    def add(self, metrics: SessionMetrics) -> None:
        """Fold in one session's metrics."""
        self._per_seed.append(metrics)

    def add_many(self, metrics: Iterable[SessionMetrics]) -> None:
        for m in metrics:
            self.add(m)

    def add_artifact(self, path: Union[str, Path]) -> int:
        """Fold in one on-disk artifact; returns the #rows it held.

        The artifact's full payload is released before the next call —
        only the compact rows survive the fold."""
        rows = read_metrics_artifact(path)
        self.add_many(rows)
        return len(rows)

    def result(self) -> AggregateResult:
        """The aggregate over everything folded so far — byte-identical
        to ``aggregate_metrics(all_rows_in_fold_order)``."""
        return aggregate_metrics(self._per_seed, self._resamples)


def aggregate_sessions(config: ScenarioConfig,
                       seeds: Sequence[int],
                       probe_name: Optional[str] = None,
                       resamples: int = 400,
                       jobs: int = 1) -> AggregateResult:
    """Run ``config`` once per seed and aggregate the probe metrics.

    ``jobs`` fans the independent seeded sessions out to worker
    processes; the aggregate is identical for every ``jobs`` value.
    """
    per_seed = run_seed_sweep(config, seeds, jobs=jobs,
                              probe_name=probe_name)
    return aggregate_metrics(per_seed, resamples)
