"""ISP-level locality accounting (Figures 2-6).

Every function here consumes *captured traces* (or transactions matched
from them) plus the IP->ASN directory — never simulator internals — so
the measurement path mirrors the paper's: sniff, resolve, aggregate.

Infrastructure addresses (bootstrap, trackers, channel source) can be
excluded from peer accounting via the ``infrastructure`` set, since the
paper's peer statistics count viewers, not PPLive servers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from ..capture.matching import DataTransaction
from ..capture.records import PEER_LIST_REPLY, TRACKER_REPLY
from ..capture.store import TraceStore
from ..network.asn import AsnDirectory
from ..network.isp import ISPCategory

#: Display order used by all the figure-style tables.
CATEGORY_ORDER = (ISPCategory.TELE, ISPCategory.CNC, ISPCategory.CER,
                  ISPCategory.OTHER_CN, ISPCategory.FOREIGN)


def _category(directory: AsnDirectory,
              address: str) -> Optional[ISPCategory]:
    return directory.category_of(address)


# ----------------------------------------------------------------------
# Panel (a): returned peer addresses by ISP (with duplicates)
# ----------------------------------------------------------------------
def returned_peer_counts(trace: TraceStore, directory: AsnDirectory,
                         infrastructure: Set[str] = frozenset()
                         ) -> Counter:
    """Count every address on every received peer list, by ISP category.

    Duplicates deliberately count multiple times — the paper's
    Figure 2(a) caption says "(with duplicate)".
    """
    counts: Counter = Counter()
    for record in trace.incoming(PEER_LIST_REPLY, TRACKER_REPLY):
        for address in getattr(record.payload, "peers", ()):
            if address in infrastructure:
                continue
            category = _category(directory, address)
            if category is not None:
                counts[category] += 1
    return counts


def unique_listed_peers(trace: TraceStore,
                        infrastructure: Set[str] = frozenset()) -> Set[str]:
    """Distinct peer addresses ever seen on a returned list."""
    unique: Set[str] = set()
    for record in trace.incoming(PEER_LIST_REPLY, TRACKER_REPLY):
        for address in getattr(record.payload, "peers", ()):
            if address not in infrastructure:
                unique.add(address)
    return unique


# ----------------------------------------------------------------------
# Panel (b): returned addresses split by who returned them
# ----------------------------------------------------------------------
#: Replier grouping of Figure 2(b): trackers exist only in TELE/CNC/CER,
#: so the buckets are {TELE,CNC,CER} x {peer,server} plus OTHER_p.
REPLIER_BUCKETS = ("CNC_p", "CNC_s", "TELE_p", "TELE_s", "CER_p", "CER_s",
                   "OTHER_p")


def _replier_bucket(category: Optional[ISPCategory],
                    is_tracker: bool) -> Optional[str]:
    if category is None:
        return None
    suffix = "_s" if is_tracker else "_p"
    if category is ISPCategory.TELE:
        return "TELE" + suffix
    if category is ISPCategory.CNC:
        return "CNC" + suffix
    if category is ISPCategory.CER:
        return "CER" + suffix
    # The paper observed no trackers outside the three big Chinese ISPs.
    return None if is_tracker else "OTHER_p"


def returned_by_source(trace: TraceStore, directory: AsnDirectory,
                       infrastructure: Set[str] = frozenset()
                       ) -> Dict[str, Counter]:
    """Figure 2(b): per replier bucket, the ISP mix of returned entries."""
    result: Dict[str, Counter] = {bucket: Counter()
                                  for bucket in REPLIER_BUCKETS}
    for record in trace.incoming(PEER_LIST_REPLY, TRACKER_REPLY):
        is_tracker = record.msg_type == TRACKER_REPLY
        replier_category = _category(directory, record.src)
        bucket = _replier_bucket(replier_category, is_tracker)
        if bucket is None:
            continue
        for address in getattr(record.payload, "peers", ()):
            if address in infrastructure:
                continue
            category = _category(directory, address)
            if category is not None:
                result[bucket][category] += 1
    return result


def own_isp_share_of_replies(trace: TraceStore, directory: AsnDirectory,
                             infrastructure: Set[str] = frozenset()
                             ) -> Dict[str, float]:
    """Per replier bucket, the fraction of entries in the replier's own ISP.

    Quantifies the paper's observation that "peers in CNC and TELE
    returned over 75% of IP addresses belonging to their same ISPs".
    """
    by_source = returned_by_source(trace, directory, infrastructure)
    shares: Dict[str, float] = {}
    own_of_bucket = {
        "TELE_p": ISPCategory.TELE, "CNC_p": ISPCategory.CNC,
        "CER_p": ISPCategory.CER,
    }
    for bucket, own_category in own_of_bucket.items():
        counts = by_source[bucket]
        total = sum(counts.values())
        if total:
            shares[bucket] = counts[own_category] / total
    return shares


# ----------------------------------------------------------------------
# Panel (c): data transmissions and bytes by ISP
# ----------------------------------------------------------------------
def transmissions_by_isp(transactions: Sequence[DataTransaction],
                         directory: AsnDirectory,
                         infrastructure: Set[str] = frozenset()) -> Counter:
    """Number of matched data request/reply pairs per remote ISP."""
    counts: Counter = Counter()
    for txn in transactions:
        if txn.remote in infrastructure:
            continue
        category = _category(directory, txn.remote)
        if category is not None:
            counts[category] += 1
    return counts


def bytes_by_isp(transactions: Sequence[DataTransaction],
                 directory: AsnDirectory,
                 infrastructure: Set[str] = frozenset()) -> Counter:
    """Downloaded streaming payload bytes per remote ISP."""
    counts: Counter = Counter()
    for txn in transactions:
        if txn.remote in infrastructure:
            continue
        category = _category(directory, txn.remote)
        if category is not None:
            counts[category] += txn.payload_bytes
    return counts


def traffic_locality(transactions: Sequence[DataTransaction],
                     directory: AsnDirectory,
                     own_category: ISPCategory,
                     infrastructure: Set[str] = frozenset()) -> float:
    """Fraction of downloaded bytes served from ``own_category`` peers.

    The paper's Figure 6 metric: "the percentage of traffic served from
    peers in the same ISP".
    """
    per_isp = bytes_by_isp(transactions, directory, infrastructure)
    total = sum(per_isp.values())
    if total == 0:
        return 0.0
    return per_isp[own_category] / total


# ----------------------------------------------------------------------
# Swarm-wide delivery accounting (the flow ledger's post-hoc twin)
# ----------------------------------------------------------------------
#: One delivered datagram, as ``(src_address, dst_address, wire_bytes)``.
Delivery = Tuple[str, str, int]


def delivered_bytes_by_as_pair(deliveries: Iterable[Delivery],
                               directory: AsnDirectory
                               ) -> Dict[Tuple[int, int], int]:
    """Wire bytes per directed ``(src ASN, dst ASN)`` pair.

    Consumes a full delivery trace — every datagram the transport
    handed to a host, not just one probe's capture — and joins both
    endpoints through the same directory lookup the per-probe analyses
    use.  Endpoints that resolve to no AS are skipped, mirroring the
    live ledger's ``datagrams_ignored`` policy.
    """
    matrix: Dict[Tuple[int, int], int] = {}
    for src, dst, wire_bytes in deliveries:
        src_record = directory.lookup(src)
        dst_record = directory.lookup(dst)
        if src_record is None or dst_record is None:
            continue
        key = (src_record.asn, dst_record.asn)
        matrix[key] = matrix.get(key, 0) + wire_bytes
    return matrix


def transit_byte_share(deliveries: Iterable[Delivery],
                       directory: AsnDirectory) -> float:
    """Share of delivered wire bytes that crossed an AS boundary.

    The post-hoc ground truth for the live flow ledger: identical
    integer byte totals and the identical ``(total - intra) / total``
    expression as :func:`repro.obs.flows.transit_share`, so on the same
    delivery stream the two agree *exactly* (asserted on the golden
    campaign in ``tests/test_flows.py``).
    """
    total = 0
    intra = 0
    for src, dst, wire_bytes in deliveries:
        src_record = directory.lookup(src)
        dst_record = directory.lookup(dst)
        if src_record is None or dst_record is None:
            continue
        total += wire_bytes
        if src_record.asn == dst_record.asn:
            intra += wire_bytes
    if total == 0:
        return 0.0
    return (total - intra) / total


@dataclass
class LocalityBreakdown:
    """Everything Figures 2-5 show for one probe/session."""

    probe: str
    probe_category: ISPCategory
    returned_counts: Counter = field(default_factory=Counter)
    by_source: Dict[str, Counter] = field(default_factory=dict)
    transmissions: Counter = field(default_factory=Counter)
    bytes: Counter = field(default_factory=Counter)
    unique_listed: int = 0
    locality: float = 0.0

    @property
    def returned_total(self) -> int:
        return sum(self.returned_counts.values())

    @property
    def bytes_total(self) -> int:
        return sum(self.bytes.values())


def locality_breakdown(trace: TraceStore,
                       transactions: Sequence[DataTransaction],
                       directory: AsnDirectory,
                       infrastructure: Set[str] = frozenset()
                       ) -> LocalityBreakdown:
    """Compute the full Figures 2-5 panel set from one probe trace."""
    probe = trace.probe_address
    probe_category = directory.category_of(probe)
    if probe_category is None:
        raise ValueError(f"probe address {probe} resolves to no AS")
    return LocalityBreakdown(
        probe=probe,
        probe_category=probe_category,
        returned_counts=returned_peer_counts(trace, directory,
                                             infrastructure),
        by_source=returned_by_source(trace, directory, infrastructure),
        transmissions=transmissions_by_isp(transactions, directory,
                                           infrastructure),
        bytes=bytes_by_isp(transactions, directory, infrastructure),
        unique_listed=len(unique_listed_peers(trace, infrastructure)),
        locality=traffic_locality(transactions, directory, probe_category,
                                  infrastructure),
    )
