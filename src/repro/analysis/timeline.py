"""Within-session time series.

The paper's response-time figures plot metrics "along time" through the
two-hour playback; this module provides the matching sliding-window
views for the locality metrics, so a single session's dynamics (warm-up
transient, mid-session load effects) are visible rather than only the
session-wide aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..capture.matching import DataTransaction
from ..network.asn import AsnDirectory
from ..network.isp import ISPCategory


@dataclass(frozen=True)
class TimelinePoint:
    """One sliding-window sample."""

    time: float
    locality: float
    transactions: int
    bytes: int


def locality_timeline(transactions: Sequence[DataTransaction],
                      directory: AsnDirectory,
                      own_category: ISPCategory,
                      window: float = 120.0,
                      step: Optional[float] = None,
                      infrastructure: Set[str] = frozenset()
                      ) -> List[TimelinePoint]:
    """Sliding-window traffic locality through one session.

    Each point covers ``[t - window, t)`` and reports the own-ISP byte
    share of the data downloaded in that window.  Windows with no
    traffic are skipped.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    included = sorted((t for t in transactions
                       if t.remote not in infrastructure),
                      key=lambda t: t.reply_time)
    if not included:
        return []
    if step is None:
        step = window / 2.0
    if step <= 0:
        raise ValueError("step must be positive")

    start = included[0].reply_time
    end = included[-1].reply_time
    points: List[TimelinePoint] = []
    # A trace shorter than one window still yields a single sample
    # covering everything.
    t = min(start + window, end + 1e-9) if end - start < window \
        else start + window
    index_low = 0
    while t <= end + step:
        window_start = t - window
        # Advance the lower cursor; transactions are sorted by reply.
        while (index_low < len(included)
               and included[index_low].reply_time < window_start):
            index_low += 1
        total_bytes = 0
        own_bytes = 0
        count = 0
        for txn in included[index_low:]:
            if txn.reply_time >= t:
                break
            count += 1
            total_bytes += txn.payload_bytes
            if directory.category_of(txn.remote) is own_category:
                own_bytes += txn.payload_bytes
        if total_bytes > 0:
            points.append(TimelinePoint(
                time=t, locality=own_bytes / total_bytes,
                transactions=count, bytes=total_bytes))
        t += step
    return points


def timeline_summary(points: Sequence[TimelinePoint]) -> dict:
    """Min/mean/max locality over a timeline (empty dict if no points)."""
    if not points:
        return {}
    localities = [p.locality for p in points]
    return {
        "min": min(localities),
        "mean": sum(localities) / len(localities),
        "max": max(localities),
        "samples": len(localities),
    }
