"""Deterministic fault injection.

:class:`FaultInjector` arms a :class:`FaultSchedule` onto a running
scenario: every event becomes one or two simulator callbacks (begin and,
for windowed faults, end/recovery).  Determinism contract:

* each fault draws randomness only from its own stream, seeded
  ``derive_seed(master_seed, "fault:<index>:<name>")`` — adding,
  removing or reordering faults never perturbs any other stream in the
  run, and runs are byte-reproducible at any ``--jobs`` level;
* link degradation applies *multipliers after* the latency model's
  normal draws, so the underlay's RNG draw count is unchanged;
* a silent server outage (``drop_probability == 1``) makes zero draws.

Every fault emits observability metrics (``faults.*``), trace records
(``fault_begin`` / ``fault_end``) and a begin/end span in the
``"faults"`` category, so Perfetto timelines show fault windows against
the peerlist/data/playback chains.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Dict, List, Optional, Sequence

from ..adversary import build_adversary
from ..network.latency import LatencyModel, PairClass, PathOverride
from ..network.transport import Host, UdpNetwork
from ..obs import INFO, Instrumentation
from ..obs import resolve as resolve_obs
from ..sim.engine import Simulator
from ..sim.random import derive_seed
from .schedule import (AdversaryEvent, FaultSchedule, FlashCrowd,
                       LinkDegradation, PeerBlackout, ServerOutage)


class FaultInjector:
    """Arms a fault schedule onto one simulated scenario."""

    def __init__(self, sim: Simulator, schedule: FaultSchedule, *,
                 network: UdpNetwork, latency: LatencyModel,
                 bootstrap: Optional[Host] = None,
                 trackers: Sequence[Host] = (),
                 source: Optional[Host] = None,
                 population=None,
                 master_seed: int = 0,
                 flow_ledger=None,
                 obs: Optional[Instrumentation] = None) -> None:
        self.sim = sim
        self.schedule = schedule
        self.network = network
        self.latency = latency
        self.bootstrap = bootstrap
        self.trackers = list(trackers)
        self.source = source
        self.population = population
        self.master_seed = master_seed
        #: Optional :class:`repro.obs.FlowLedger` — adversarial peers'
        #: addresses are marked so their bytes are tagged in flow totals.
        self.flow_ledger = flow_ledger

        self.faults_begun = 0
        self.faults_ended = 0
        self.adversaries_attached = 0
        #: Fault name -> installed spawn hook, for window teardown.
        self._adversary_hooks: Dict[str, object] = {}
        #: Names of currently active (windowed) faults.
        self.active: List[str] = []
        self._armed = False
        self._spans_open: Dict[str, object] = {}

        obs = resolve_obs(obs)
        self._obs = obs
        self._trace = obs.trace
        self._spans = obs.spans
        self._metrics = obs.metrics
        self._g_active = obs.metrics.gauge("faults.active")

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> int:
        """Schedule every event; returns the number of events armed."""
        if self._armed:
            raise RuntimeError("schedule already armed")
        self._armed = True
        for index, event in enumerate(self.schedule.events):
            name = self.schedule.name_of(index)
            rng = random.Random(derive_seed(
                self.master_seed, f"fault:{index}:{name}"))
            if isinstance(event, ServerOutage):
                self._arm_outage(name, event, rng)
            elif isinstance(event, LinkDegradation):
                self._arm_degradation(name, event)
            elif isinstance(event, PeerBlackout):
                self._arm_blackout(name, event, rng)
            elif isinstance(event, FlashCrowd):
                self._arm_flash_crowd(name, event, rng)
            elif isinstance(event, AdversaryEvent):
                self._arm_adversary(name, event, rng)
            else:  # pragma: no cover - schedule validation forbids this
                raise TypeError(f"unknown fault event {event!r}")
        return len(self.schedule.events)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Plain-data snapshot of the injector's mutable state: the
        begin/end counters, the armed flag and which windowed faults are
        currently active.  The begin/end *callbacks* themselves are
        pending engine events (bound methods of this injector) and are
        captured by ``Simulator.snapshot_state``."""
        return {"faults_begun": self.faults_begun,
                "faults_ended": self.faults_ended,
                "armed": self._armed,
                "active": list(self.active),
                "adversaries_attached": self.adversaries_attached}

    def restore_state(self, state: dict) -> None:
        """Rebuild the injector's mutable state in place from
        :meth:`snapshot_state`."""
        self.faults_begun = state["faults_begun"]
        self.faults_ended = state["faults_ended"]
        self._armed = state["armed"]
        self.active = list(state["active"])
        self.adversaries_attached = state.get("adversaries_attached", 0)
        self._g_active.set(len(self.active))

    # ------------------------------------------------------------------
    # Observability helpers
    # ------------------------------------------------------------------
    def _begin(self, name: str, event, **details) -> None:
        self.faults_begun += 1
        self.active.append(name)
        self._g_active.set(len(self.active))
        self._metrics.counter("faults.injected",
                              {"kind": event.KIND}).inc()
        if self._trace.enabled_for(INFO):
            self._trace.emit(self.sim.now, INFO, "fault_begin",
                             fault=name, kind=event.KIND, **details)
        if self._spans.enabled:
            self._spans_open[name] = self._spans.start_span(
                f"fault:{event.KIND}", "faults", self.sim.now,
                actor="faults", fault=name, **details)

    def _end(self, name: str, event, **details) -> None:
        self.faults_ended += 1
        if name in self.active:
            self.active.remove(name)
        self._g_active.set(len(self.active))
        self._metrics.counter("faults.recovered",
                              {"kind": event.KIND}).inc()
        if self._trace.enabled_for(INFO):
            self._trace.emit(self.sim.now, INFO, "fault_end",
                             fault=name, kind=event.KIND, **details)
        span = self._spans_open.pop(name, None)
        if span is not None:
            span.finish(self.sim.now)

    def _instant(self, name: str, event, **details) -> None:
        self.faults_begun += 1
        self.faults_ended += 1
        self._metrics.counter("faults.injected",
                              {"kind": event.KIND}).inc()
        self._metrics.counter("faults.recovered",
                              {"kind": event.KIND}).inc()
        if self._trace.enabled_for(INFO):
            self._trace.emit(self.sim.now, INFO, "fault_begin",
                             fault=name, kind=event.KIND, **details)
        if self._spans.enabled:
            self._spans.instant(f"fault:{event.KIND}", "faults",
                                self.sim.now, actor="faults", fault=name,
                                **details)

    # ------------------------------------------------------------------
    # Server outages
    # ------------------------------------------------------------------
    def _outage_hosts(self, target: str) -> List[Host]:
        if target == "bootstrap":
            hosts = [self.bootstrap]
        elif target == "source":
            hosts = [self.source]
        elif target == "trackers":
            hosts = list(self.trackers)
        else:  # "tracker:<group_id>", validated by the schedule
            group_id = int(target.split(":", 1)[1])
            hosts = [t for t in self.trackers
                     if getattr(t, "group_id", None) == group_id]
        present = [h for h in hosts if h is not None]
        if not present:
            raise ValueError(
                f"outage target {target!r} matches no deployed server")
        return present

    def _arm_outage(self, name: str, event: ServerOutage,
                    rng: random.Random) -> None:
        # partial-of-bound-method, not a closure: the scheduled events
        # must stay snapshot-serializable (closures cannot pickle).
        self.sim.call_at(event.start,
                         partial(self._outage_begin, name, event, rng),
                         label="fault-begin")
        self.sim.call_at(event.end,
                         partial(self._outage_end, name, event),
                         label="fault-end")

    def _outage_begin(self, name: str, event: ServerOutage,
                      rng: random.Random) -> None:
        hosts = self._outage_hosts(event.target)
        for host in hosts:
            host.install_fault_filter(event.drop_probability, rng)
        self._begin(name, event, target=event.target,
                    servers=len(hosts),
                    drop_probability=event.drop_probability)

    def _outage_end(self, name: str, event: ServerOutage) -> None:
        for host in self._outage_hosts(event.target):
            host.clear_fault_filter()
        self._end(name, event, target=event.target)

    # ------------------------------------------------------------------
    # Link degradation
    # ------------------------------------------------------------------
    def _arm_degradation(self, name: str, event: LinkDegradation) -> None:
        pair_class = PairClass(event.pair_class)
        override = PathOverride(
            loss_multiplier=event.loss_multiplier,
            extra_loss=event.extra_loss,
            latency_multiplier=event.latency_multiplier,
            bandwidth_multiplier=event.bandwidth_multiplier)
        self.sim.call_at(event.start,
                         partial(self._degradation_begin, name, event,
                                 pair_class, override),
                         label="fault-begin")
        self.sim.call_at(event.end,
                         partial(self._degradation_end, name, event,
                                 pair_class, override),
                         label="fault-end")

    def _degradation_begin(self, name: str, event: LinkDegradation,
                           pair_class: PairClass,
                           override: PathOverride) -> None:
        self.latency.push_override(pair_class, override)
        self._begin(name, event, pair_class=event.pair_class,
                    loss_multiplier=event.loss_multiplier,
                    extra_loss=event.extra_loss,
                    latency_multiplier=event.latency_multiplier,
                    bandwidth_multiplier=event.bandwidth_multiplier)

    def _degradation_end(self, name: str, event: LinkDegradation,
                         pair_class: PairClass,
                         override: PathOverride) -> None:
        self.latency.pop_override(pair_class, override)
        self._end(name, event, pair_class=event.pair_class)

    # ------------------------------------------------------------------
    # Correlated peer failure
    # ------------------------------------------------------------------
    def _arm_blackout(self, name: str, event: PeerBlackout,
                      rng: random.Random) -> None:
        self.sim.call_at(event.start,
                         partial(self._blackout_strike, name, event, rng),
                         label="fault-begin")

    def _blackout_strike(self, name: str, event: PeerBlackout,
                         rng: random.Random) -> None:
        if self.population is None:
            raise ValueError("peer_blackout needs a population manager")
        victims = [viewer for viewer in self.population.active
                   if getattr(viewer, "isp", None) is not None
                   and viewer.isp.name == event.isp_name]
        count = int(len(victims) * event.fraction + 0.5)
        chosen = rng.sample(victims, count) if count else []
        for viewer in chosen:
            self.population.crash_viewer(viewer)
        self._instant(name, event, isp=event.isp_name,
                      crashed=len(chosen), eligible=len(victims))

    # ------------------------------------------------------------------
    # Flash crowds
    # ------------------------------------------------------------------
    def _arm_flash_crowd(self, name: str, event: FlashCrowd,
                         rng: random.Random) -> None:
        # Arrival instants are drawn once, at arm time, from the fault's
        # own stream: a fixed draw count per event.
        offsets = sorted(rng.uniform(0.0, event.duration)
                         for _ in range(event.arrivals))
        self.sim.call_at(event.start,
                         partial(self._crowd_begin, name, event),
                         label="fault-begin")
        for offset in offsets:
            self.sim.call_at(event.start + offset, self._crowd_arrive,
                             label="fault-arrival")
        self.sim.call_at(event.end,
                         partial(self._crowd_end, name, event),
                         label="fault-end")

    def _crowd_begin(self, name: str, event: FlashCrowd) -> None:
        self._begin(name, event, arrivals=event.arrivals,
                    duration=event.duration)

    def _crowd_arrive(self) -> None:
        if self.population is None:
            raise ValueError("flash_crowd needs a population manager")
        self.population.inject_arrival()

    def _crowd_end(self, name: str, event: FlashCrowd) -> None:
        self._end(name, event, arrivals=event.arrivals)

    # ------------------------------------------------------------------
    # Adversarial peers
    # ------------------------------------------------------------------
    def _arm_adversary(self, name: str, event: AdversaryEvent,
                       rng: random.Random) -> None:
        self.sim.call_at(event.start,
                         partial(self._adversary_begin, name, event, rng),
                         label="fault-begin")
        self.sim.call_at(event.end,
                         partial(self._adversary_end, name, event),
                         label="fault-end")

    def _adversary_begin(self, name: str, event: AdversaryEvent,
                         rng: random.Random) -> None:
        if self.population is None:
            raise ValueError("adversary needs a population manager")
        hook = partial(self._adversary_spawn, name, event, rng)
        self._adversary_hooks[name] = hook
        self.population.add_spawn_hook(hook)
        self._begin(name, event, behavior=event.behavior,
                    fraction=event.fraction)

    def _adversary_spawn(self, name: str, event: AdversaryEvent,
                         rng: random.Random, viewer) -> None:
        """Spawn hook: each arrival in the window independently turns
        adversarial with probability ``fraction``.  All draws — the
        attach decision and the attached model's seed — come from the
        event's own stream, so honest peers' draw sequences never
        move."""
        if rng.random() >= event.fraction:
            return
        model = build_adversary(event.behavior, rng.getrandbits(64))
        viewer.attach_adversary(model)
        self.adversaries_attached += 1
        self._metrics.counter("faults.adversaries_attached",
                              {"behavior": event.behavior}).inc()
        if self.flow_ledger is not None:
            self.flow_ledger.mark_adversarial(viewer.address)
        if self._trace.enabled_for(INFO):
            self._trace.emit(self.sim.now, INFO, "adversary_attached",
                             fault=name, behavior=event.behavior,
                             peer=viewer.address)

    def _adversary_end(self, name: str, event: AdversaryEvent) -> None:
        hook = self._adversary_hooks.pop(name, None)
        if hook is not None and self.population is not None:
            self.population.remove_spawn_hook(hook)
        self._end(name, event, behavior=event.behavior)
