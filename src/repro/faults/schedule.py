"""Declarative fault schedules.

A :class:`FaultSchedule` is a list of timed, typed fault events — the
"chaos script" of a run.  Schedules are plain frozen dataclasses so they

* round-trip losslessly through JSON (``--faults script.json``),
* pickle cleanly into worker processes (``--jobs N``), and
* validate eagerly, at load time, not at injection time.

Four fault classes model the hostile conditions the paper's measurement
ran under:

* :class:`ServerOutage`      — tracker groups / bootstrap / source go
  silent (or degrade) for a window, then recover,
* :class:`LinkDegradation`   — per-:class:`PairClass` loss/latency/
  throughput multipliers over a window (a Tele<->CNC peering congestion
  storm, an ISP throttling cross-ISP P2P traffic),
* :class:`PeerBlackout`      — an ISP-wide incident crashes a fraction
  of one AS's viewers at an instant,
* :class:`FlashCrowd`        — an arrival burst layered on the churn
  model,
* :class:`AdversaryEvent`    — a fraction of viewers churning in
  during the window run a misbehaving-peer model
  (:mod:`repro.adversary`).

Timestamps are simulation seconds from ``t = 0`` (the start of the
scenario, i.e. *including* warm-up).  The actual injection mechanics
live in :mod:`repro.faults.injector`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Tuple, Union

from ..adversary import ADVERSARY_BEHAVIORS
from ..network.latency import PairClass

#: ``ServerOutage.target`` spellings that need no group suffix.
_SIMPLE_TARGETS = ("bootstrap", "source", "trackers")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class ServerOutage:
    """Infrastructure servers stop answering for a window.

    ``target`` is ``"bootstrap"``, ``"source"``, ``"trackers"`` (every
    tracker group) or ``"tracker:<group_id>"`` (one group).  With
    ``drop_probability < 1`` the server *degrades* instead of going
    silent: each arriving datagram is dropped with that probability,
    drawn from the fault's own RNG stream.
    """

    KIND = "server_outage"

    target: str
    start: float
    duration: float
    drop_probability: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        _require(self.start >= 0.0, "start must be >= 0")
        _require(self.duration > 0.0, "duration must be positive")
        _require(0.0 < self.drop_probability <= 1.0,
                 "drop_probability must be in (0, 1]")
        if self.target not in _SIMPLE_TARGETS:
            prefix, _, group = self.target.partition(":")
            _require(prefix == "tracker" and group.isdigit(),
                     f"bad outage target {self.target!r}; expected one of "
                     f"{_SIMPLE_TARGETS} or 'tracker:<group_id>'")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class LinkDegradation:
    """One path class degrades for a window.

    Loss probability becomes ``min(1, base * loss_multiplier +
    extra_loss)``; one-way propagation delay is multiplied by
    ``latency_multiplier``; path throughput is multiplied by
    ``bandwidth_multiplier`` (use < 1 to throttle).  Multipliers apply
    *after* the model's normal draws, so the RNG draw count — and with
    it every other stream in the run — is unchanged.
    """

    KIND = "link_degradation"

    pair_class: str
    start: float
    duration: float
    loss_multiplier: float = 1.0
    extra_loss: float = 0.0
    latency_multiplier: float = 1.0
    bandwidth_multiplier: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        _require(self.start >= 0.0, "start must be >= 0")
        _require(self.duration > 0.0, "duration must be positive")
        PairClass(self.pair_class)  # raises ValueError on a bad name
        _require(self.loss_multiplier >= 0.0,
                 "loss_multiplier must be >= 0")
        _require(0.0 <= self.extra_loss <= 1.0,
                 "extra_loss must be in [0, 1]")
        _require(self.latency_multiplier > 0.0,
                 "latency_multiplier must be positive")
        _require(self.bandwidth_multiplier > 0.0,
                 "bandwidth_multiplier must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class PeerBlackout:
    """A fraction of one ISP's viewers crash at an instant.

    Victims depart silently (no goodbyes) and are *not* replaced by the
    churn model — an ISP-wide blackout removes its audience, it does
    not reshuffle it.  Which viewers crash is drawn from the fault's
    own RNG stream.
    """

    KIND = "peer_blackout"

    isp_name: str
    start: float
    fraction: float = 0.5
    label: str = ""

    def __post_init__(self) -> None:
        _require(self.start >= 0.0, "start must be >= 0")
        _require(0.0 < self.fraction <= 1.0, "fraction must be in (0, 1]")
        _require(bool(self.isp_name), "isp_name must be non-empty")

    @property
    def end(self) -> float:
        return self.start  # instantaneous


@dataclass(frozen=True)
class FlashCrowd:
    """``arrivals`` extra viewers join during the window.

    Arrival instants are drawn uniformly over the window from the
    fault's own RNG stream; each arrival then behaves like any churned
    viewer (session length from the churn model, goodbye or crash on
    departure).
    """

    KIND = "flash_crowd"

    start: float
    duration: float
    arrivals: int
    label: str = ""

    def __post_init__(self) -> None:
        _require(self.start >= 0.0, "start must be >= 0")
        _require(self.duration > 0.0, "duration must be positive")
        _require(self.arrivals > 0, "arrivals must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class AdversaryEvent:
    """A fraction of viewers churning in during the window misbehave.

    Each arrival inside ``[start, end)`` independently becomes
    adversarial with probability ``fraction`` (drawn from the fault's
    own RNG stream); an attached viewer stays adversarial for its whole
    session, even past the window's end.  ``behavior`` picks the model
    from :data:`repro.adversary.ADVERSARY_BEHAVIORS`; each attached
    model gets its own RNG seeded from the event's stream, so
    adversarial runs stay byte-identical at any ``--jobs`` level and
    across checkpoint/resume.
    """

    KIND = "adversary"

    behavior: str
    start: float
    duration: float
    fraction: float = 0.1
    label: str = ""

    def __post_init__(self) -> None:
        _require(self.start >= 0.0, "start must be >= 0")
        _require(self.duration > 0.0, "duration must be positive")
        _require(0.0 < self.fraction <= 1.0, "fraction must be in (0, 1]")
        _require(self.behavior in ADVERSARY_BEHAVIORS,
                 f"unknown adversary behavior {self.behavior!r}; expected "
                 f"one of {list(ADVERSARY_BEHAVIORS)}")

    @property
    def end(self) -> float:
        return self.start + self.duration


FaultEvent = Union[ServerOutage, LinkDegradation, PeerBlackout,
                   FlashCrowd, AdversaryEvent]

_EVENT_TYPES: Dict[str, type] = {
    cls.KIND: cls
    for cls in (ServerOutage, LinkDegradation, PeerBlackout, FlashCrowd,
                AdversaryEvent)
}


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered collection of fault events for one run."""

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for event in self.events:
            _require(type(event) in _EVENT_TYPES.values(),
                     f"not a fault event: {event!r}")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def name_of(self, index: int) -> str:
        """Stable display/RNG name of one event: its label, or
        ``<kind>#<index>``."""
        event = self.events[index]
        return event.label or f"{event.KIND}#{index}"

    # ------------------------------------------------------------------
    # (De)serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"events": [dict(asdict(event), kind=event.KIND)
                           for event in self.events]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        if not isinstance(data, dict) or "events" not in data:
            raise ValueError("fault schedule must be a dict with 'events'")
        events = []
        for index, raw in enumerate(data["events"]):
            if not isinstance(raw, dict):
                raise ValueError(f"event #{index} is not an object")
            fields = dict(raw)
            kind = fields.pop("kind", None)
            event_type = _EVENT_TYPES.get(kind)
            if event_type is None:
                raise ValueError(
                    f"event #{index}: unknown fault kind {kind!r}; "
                    f"expected one of {sorted(_EVENT_TYPES)}")
            try:
                events.append(event_type(**fields))
            except (TypeError, ValueError) as exc:
                raise ValueError(f"event #{index} ({kind}): {exc}") from exc
        return cls(events=tuple(events))

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "FaultSchedule":
        """Read a schedule from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
