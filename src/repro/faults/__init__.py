"""Deterministic fault injection (S13): chaos scripts for the simulator.

A :class:`FaultSchedule` declares timed fault events — server outages,
link-degradation episodes, correlated peer blackouts, flash crowds —
loadable from JSON (``--faults script.json``); a :class:`FaultInjector`
arms them onto a running scenario with per-fault RNG streams so faulted
runs stay byte-reproducible at any ``--jobs`` level.  See
``docs/ROBUSTNESS.md`` for the fault model and determinism contract.
"""

from .injector import FaultInjector
from .schedule import (AdversaryEvent, FaultEvent, FaultSchedule,
                       FlashCrowd, LinkDegradation, PeerBlackout,
                       ServerOutage)

__all__ = [
    "FaultSchedule", "FaultEvent", "FaultInjector",
    "ServerOutage", "LinkDegradation", "PeerBlackout", "FlashCrowd",
    "AdversaryEvent",
]
