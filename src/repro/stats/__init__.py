"""Statistics toolkit (S9): SE/Zipf rank fits, CDFs, correlations."""

from .bootstrap import (BootstrapEstimate, bootstrap_ci, bootstrap_mean,
                        bootstrap_share, transaction_locality_ci)
from .cdf import (contribution_cdf, empirical_ccdf, empirical_cdf,
                  top_fraction_share)
from .correlation import log_linear_fit, log_log_correlation, pearson
from .fitting import LinearFit, least_squares_line, r_squared, rank_values
from .se import (StretchedExponentialFit, fit_stretched_exponential,
                 se_rank_curve, weibull_ccdf)
from .zipf import ZipfFit, fit_zipf

__all__ = [
    "LinearFit",
    "least_squares_line",
    "r_squared",
    "rank_values",
    "StretchedExponentialFit",
    "fit_stretched_exponential",
    "se_rank_curve",
    "weibull_ccdf",
    "ZipfFit",
    "fit_zipf",
    "empirical_cdf",
    "empirical_ccdf",
    "contribution_cdf",
    "top_fraction_share",
    "pearson",
    "log_log_correlation",
    "log_linear_fit",
    "BootstrapEstimate", "bootstrap_ci", "bootstrap_mean",
    "bootstrap_share", "transaction_locality_ci",
]
