"""Zipf (power-law) rank-distribution fitting.

The paper tests the per-neighbor data-request counts against a Zipf law
``y_i ∝ i^-alpha`` — a straight line in log-log space — and finds it
*does not* fit (the data bends away from the line), motivating the
stretched-exponential model instead.  This module provides the Zipf fit
so experiments can report both R² values side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .fitting import least_squares_line, r_squared, rank_values


@dataclass(frozen=True)
class ZipfFit:
    """``value(rank) = scale * rank ** -alpha``."""

    alpha: float
    scale: float
    #: R² of the straight line in log-log space.
    r_squared: float

    def predict(self, ranks: Sequence[float]) -> np.ndarray:
        ranks_arr = np.asarray(ranks, dtype=float)
        return self.scale * ranks_arr ** -self.alpha


def fit_zipf(values: Sequence[float]) -> ZipfFit:
    """Fit a Zipf law to positive ``values`` (any order; ranked inside)."""
    ranks, ordered = rank_values(values)
    if np.any(ordered <= 0):
        positive = ordered[ordered > 0]
        if positive.size < 2:
            raise ValueError("need at least two positive values")
        ranks = np.arange(1, positive.size + 1, dtype=float)
        ordered = positive
    line = least_squares_line(np.log(ranks), np.log(ordered))
    return ZipfFit(alpha=-line.slope, scale=float(np.exp(line.intercept)),
                   r_squared=line.r_squared)
