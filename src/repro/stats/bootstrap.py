"""Bootstrap resampling for uncertainty estimates.

Single-probe session statistics (locality percentages, top-10 % shares,
correlations) are point estimates over a few hundred transactions; the
bootstrap gives them honest error bars without distributional
assumptions.  Used by the multi-seed aggregation layer and available
directly for custom analyses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class BootstrapEstimate:
    """A statistic with a percentile-bootstrap confidence interval."""

    value: float
    low: float
    high: float
    confidence: float
    resamples: int

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:
        return (f"{self.value:.4f} "
                f"[{self.low:.4f}, {self.high:.4f}]@{self.confidence:.0%}")


def bootstrap_ci(samples: Sequence[T],
                 statistic: Callable[[Sequence[T]], float],
                 rng: random.Random,
                 resamples: int = 1000,
                 confidence: float = 0.95) -> BootstrapEstimate:
    """Percentile-bootstrap CI of ``statistic`` over ``samples``.

    The statistic is evaluated on the original data (the point estimate)
    and on ``resamples`` resamples-with-replacement; the interval is the
    matching percentile range of the resampled values.
    """
    if not samples:
        raise ValueError("cannot bootstrap from no samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 10:
        raise ValueError("need at least 10 resamples")
    data = list(samples)
    n = len(data)
    point = float(statistic(data))
    values: List[float] = []
    for _ in range(resamples):
        resample = [data[rng.randrange(n)] for _ in range(n)]
        values.append(float(statistic(resample)))
    values.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, int(alpha * resamples) - 1)
    high_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return BootstrapEstimate(value=point, low=values[low_index],
                             high=values[high_index],
                             confidence=confidence, resamples=resamples)


def bootstrap_mean(samples: Sequence[float], rng: random.Random,
                   resamples: int = 1000,
                   confidence: float = 0.95) -> BootstrapEstimate:
    """Shorthand: CI of the mean."""
    return bootstrap_ci(samples,
                        lambda xs: sum(xs) / len(xs),
                        rng, resamples, confidence)


def bootstrap_share(flags: Sequence[bool], rng: random.Random,
                    resamples: int = 1000,
                    confidence: float = 0.95) -> BootstrapEstimate:
    """CI of a proportion (e.g. share of same-ISP transactions)."""
    return bootstrap_ci(flags,
                        lambda xs: sum(1 for x in xs if x) / len(xs),
                        rng, resamples, confidence)


def transaction_locality_ci(transactions, directory, own_category,
                            rng: random.Random,
                            infrastructure: frozenset = frozenset(),
                            resamples: int = 500) -> Optional[
                                BootstrapEstimate]:
    """Bootstrap CI of byte-weighted traffic locality for one session.

    Resamples whole transactions, so burstiness in transaction sizes is
    reflected in the interval.  Returns ``None`` when there is no
    eligible traffic.
    """
    rows = [(t.payload_bytes,
             directory.category_of(t.remote) is own_category)
            for t in transactions if t.remote not in infrastructure]
    rows = [(size, own) for size, own in rows if size > 0]
    if not rows:
        return None

    def weighted_share(sample):
        total = sum(size for size, _own in sample)
        if total == 0:
            return 0.0
        return sum(size for size, own in sample if own) / total

    return bootstrap_ci(rows, weighted_share, rng, resamples)
