"""Stretched-exponential rank-distribution fitting.

Following Guo et al. (PODC'08) and the paper's Section 3.4: rank the
``n`` data values descending as ``x_i`` so ``P(X >= x_i) = i/n``; under a
stretched-exponential (Weibull-tailed) law the rank distribution obeys

    y_i^c = -a * log(i) + b      (1 <= i <= n)

i.e. a straight line when the y-axis is raised to the power ``c`` and the
x-axis is logarithmic ("the SE scale").  With ``y_n = 1`` the intercept
is constrained to ``b = 1 + a*log(n)`` (paper, Eq. 2).

:func:`fit_stretched_exponential` grid-searches the stretch exponent
``c`` and fits ``a, b`` by least squares in the transformed space,
reporting R² in that space — exactly the quantity printed inside the
paper's Figures 11-14(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .fitting import least_squares_line, r_squared, rank_values


@dataclass(frozen=True)
class StretchedExponentialFit:
    """``value(rank) ** c = -a * log(rank) + b``."""

    c: float
    a: float
    b: float
    #: R² measured in the (log rank, y^c) space.
    r_squared: float
    n: int

    def predict(self, ranks: Sequence[float]) -> np.ndarray:
        """Predicted values at ``ranks`` (clipped at zero before the root)."""
        ranks_arr = np.asarray(ranks, dtype=float)
        transformed = -self.a * np.log(ranks_arr) + self.b
        return np.clip(transformed, 0.0, None) ** (1.0 / self.c)

    @property
    def x0(self) -> float:
        """Characteristic scale ``x_0 = a ** (1/c)`` of the Weibull CCDF."""
        return self.a ** (1.0 / self.c) if self.a > 0 else 0.0


def _fit_for_c(log_ranks: np.ndarray, ordered: np.ndarray,
               c: float) -> StretchedExponentialFit:
    transformed = ordered ** c
    line = least_squares_line(log_ranks, transformed)
    return StretchedExponentialFit(
        c=c, a=-line.slope, b=line.intercept,
        r_squared=line.r_squared, n=ordered.size)


def fit_stretched_exponential(
        values: Sequence[float],
        c_grid: Optional[Sequence[float]] = None) -> StretchedExponentialFit:
    """Fit the SE rank law to positive ``values``.

    ``c`` is chosen from ``c_grid`` (default 0.05..1.00 in steps of 0.05,
    matching the granularity the paper reports, e.g. c = 0.2, 0.3, 0.35,
    0.4) to maximise R² in the transformed space.
    """
    ranks, ordered = rank_values(values)
    positive = ordered[ordered > 0]
    if positive.size < 3:
        raise ValueError("need at least three positive values for an SE fit")
    ranks = np.arange(1, positive.size + 1, dtype=float)
    log_ranks = np.log(ranks)
    if c_grid is None:
        c_grid = np.round(np.arange(0.05, 1.0001, 0.05), 2)
    best: Optional[StretchedExponentialFit] = None
    for c in c_grid:
        candidate = _fit_for_c(log_ranks, positive, float(c))
        if best is None or candidate.r_squared > best.r_squared:
            best = candidate
    assert best is not None
    return best


def se_rank_curve(fit: StretchedExponentialFit,
                  n: Optional[int] = None) -> np.ndarray:
    """The fitted curve evaluated at ranks ``1..n`` (default: fit.n)."""
    count = n if n is not None else fit.n
    return fit.predict(np.arange(1, count + 1, dtype=float))


def weibull_ccdf(x: np.ndarray, x0: float, c: float) -> np.ndarray:
    """The Weibull CCDF ``exp(-(x/x0)^c)`` corresponding to an SE law."""
    if x0 <= 0 or c <= 0:
        raise ValueError("x0 and c must be positive")
    x_arr = np.asarray(x, dtype=float)
    return np.exp(-(x_arr / x0) ** c)
