"""Empirical CDF/CCDF helpers and concentration metrics."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted values, P(X <= value))`` for plotting an ECDF."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a CDF from no data")
    ordered = np.sort(arr)
    probabilities = np.arange(1, ordered.size + 1, dtype=float) / ordered.size
    return ordered, probabilities


def empirical_ccdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted values, P(X >= value))``."""
    ordered, cdf = empirical_cdf(values)
    ccdf = 1.0 - cdf + 1.0 / ordered.size
    return ordered, ccdf


def contribution_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Cumulative share of the total contributed by the top-k ranked items.

    Returns ``(rank 1..n, cumulative fraction of sum)`` with items sorted
    by descending contribution — the quantity plotted in the paper's
    Figures 11-14(c).
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a contribution CDF from no data")
    if np.any(arr < 0):
        raise ValueError("contributions must be non-negative")
    total = arr.sum()
    if total == 0:
        raise ValueError("total contribution is zero")
    ordered = np.sort(arr)[::-1]
    ranks = np.arange(1, ordered.size + 1, dtype=float)
    return ranks, np.cumsum(ordered) / total


def top_fraction_share(values: Sequence[float],
                       fraction: float = 0.10) -> float:
    """Share of the total contributed by the top ``fraction`` of items.

    ``top_fraction_share(bytes_by_peer, 0.10)`` answers the paper's
    headline question: how much of the streaming traffic do the top 10 %
    of connected peers upload?  The number of items counted is
    ``ceil(fraction * n)`` so small populations round up, as the paper's
    "top 10% of 326 peers" style statements do.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    total = arr.sum()
    if total <= 0:
        raise ValueError("total must be positive")
    k = int(np.ceil(fraction * arr.size))
    ordered = np.sort(arr)[::-1]
    return float(ordered[:k].sum() / total)
