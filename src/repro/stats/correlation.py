"""Correlation utilities for the request-count vs RTT analysis.

Section 3.5 of the paper computes "the correlation coefficient between
the logarithm of the number of requests and the logarithm of RTT" and
fits the RTT-vs-rank series with least squares in log space.  These
helpers implement both.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .fitting import LinearFit, least_squares_line


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError("x and y must have the same length")
    if x_arr.size < 2:
        raise ValueError("need at least two points")
    x_std = x_arr.std()
    y_std = y_arr.std()
    if x_std == 0 or y_std == 0:
        raise ValueError("zero variance input")
    return float(((x_arr - x_arr.mean()) * (y_arr - y_arr.mean())).mean()
                 / (x_std * y_std))


def log_log_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation of ``log(x)`` vs ``log(y)`` (positives only).

    Pairs where either value is non-positive are dropped, mirroring how
    log-scale plots silently discard them.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError("x and y must have the same length")
    mask = (x_arr > 0) & (y_arr > 0)
    if mask.sum() < 2:
        raise ValueError("need at least two positive pairs")
    return pearson(np.log(x_arr[mask]), np.log(y_arr[mask]))


def log_linear_fit(x: Sequence[float],
                   y: Sequence[float]) -> LinearFit:
    """Least-squares fit of ``log(y)`` against ``x``.

    Used for the "linear fit in log scale" line through the RTT-vs-rank
    scatter in Figures 15-18.
    """
    y_arr = np.asarray(y, dtype=float)
    x_arr = np.asarray(x, dtype=float)
    mask = y_arr > 0
    if mask.sum() < 2:
        raise ValueError("need at least two positive y values")
    return least_squares_line(x_arr[mask], np.log(y_arr[mask]))
