"""Shared least-squares machinery for the rank-distribution fits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """Result of a simple linear least-squares fit ``y = slope*x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def least_squares_line(x: Sequence[float],
                       y: Sequence[float]) -> LinearFit:
    """Fit ``y = slope*x + intercept`` and report R^2 in the same space."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValueError("x and y must have the same length")
    if x_arr.size < 2:
        raise ValueError("need at least two points to fit a line")
    x_mean = x_arr.mean()
    y_mean = y_arr.mean()
    denominator = float(((x_arr - x_mean) ** 2).sum())
    if denominator == 0.0:
        raise ValueError("x values are all identical")
    slope = float(((x_arr - x_mean) * (y_arr - y_mean)).sum() / denominator)
    intercept = float(y_mean - slope * x_mean)
    return LinearFit(slope=slope, intercept=intercept,
                     r_squared=r_squared(y_arr, slope * x_arr + intercept))


def r_squared(observed: Sequence[float],
              predicted: Sequence[float]) -> float:
    """Coefficient of determination of ``predicted`` against ``observed``."""
    obs = np.asarray(observed, dtype=float)
    pred = np.asarray(predicted, dtype=float)
    if obs.shape != pred.shape:
        raise ValueError("observed and predicted must have the same length")
    ss_res = float(((obs - pred) ** 2).sum())
    ss_tot = float(((obs - obs.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def rank_values(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sort ``values`` descending and return (ranks starting at 1, values)."""
    arr = np.asarray(sorted(values, reverse=True), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot rank an empty sequence")
    ranks = np.arange(1, arr.size + 1, dtype=float)
    return ranks, arr
