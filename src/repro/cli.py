"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro list [--json]
    python -m repro fig02 [--scale small|default|full] [--seed N]
    python -m repro fig02 --metrics m.jsonl --trace t.jsonl --progress
    python -m repro fig02 --spans spans.json
    python -m repro table1
    python -m repro all --scale small
    python -m repro run fig06 --jobs 4
    python -m repro run fig06 --checkpoint ckpt/ --checkpoint-every 4
    python -m repro run fig06 --resume ckpt/
    python -m repro run chaos --faults examples/faults/chaos_demo.json
    python -m repro fig06 --progress-jsonl progress.jsonl
    python -m repro status progress.jsonl
    python -m repro top progress.jsonl --interval 2
    python -m repro fig06 --flows flows.jsonl
    python -m repro flows summary flows.jsonl
    python -m repro flows matrix flows.jsonl --by-kind
    python -m repro flows windows flows.jsonl
    python -m repro flows top flows.jsonl --limit 10
    python -m repro report --scale small --out scorecard.md
    python -m repro bench --quick --check
    python -m repro bench --diff BENCH_engine.json /tmp/new/BENCH_engine.json

``all`` runs every single-session figure and Table 1 (the four canonical
sessions are simulated once and shared); ``fig06`` runs the campaign and
is therefore much slower.  A leading ``run`` token is accepted and
ignored (``repro run fig06`` == ``repro fig06``); ``--jobs N`` fans
parallelisable experiments — currently the fig06 campaign — out to N
worker processes with byte-identical output (see ``docs/PARALLEL.md``).

``--checkpoint DIR`` persists each completed campaign (program, day)
unit to DIR as an atomic, digest-stamped artifact; ``--resume DIR``
restarts a killed campaign from those artifacts, simulating only the
missing days, with output byte-identical to an uninterrupted run
(fig06 and resilience — see ``docs/CHECKPOINT.md``).

``chaos`` runs the fault-injection study (see ``docs/ROBUSTNESS.md``):
a clean and a faulted session from the same seed, with recovery
measured per fault.  ``resilience`` sweeps misbehaving-peer models
over attachment fractions and scores each cell against a clean
baseline.  ``--faults script.json`` loads a declarative
:class:`repro.faults.FaultSchedule`; with any other experiment it arms
the schedule onto the simulated sessions, showing that figure *under*
faults.

``report`` builds the run-fidelity scorecard: every paper-target
statistic of Figures 2-5/11-18 and Table 1 measured against its target
range, plus engine perf numbers, written as markdown (or HTML with
``--format html``) and appended as one JSON record to
``benchmarks/results/trend.jsonl``.

``bench`` runs the engine/campaign micro-benchmarks and writes the
machine-readable perf baselines ``BENCH_engine.json`` /
``BENCH_campaign.json`` at the repo root; with ``--check`` it fails when
a golden digest drifts from the committed baseline (the CI perf gate —
see ``docs/PERFORMANCE.md``).  Each record now carries a per-subsystem
wall-time attribution block; ``bench --diff OLD NEW`` compares two
artifacts (and ``bench --diff`` with no paths diffs a fresh run against
the committed baselines), failing on events/sec regressions beyond
``--threshold``.

``status`` and ``top`` read a ``--progress-jsonl`` artifact — live
mid-run (a torn final line is tolerated) or finished — and print a
one-shot summary with ETA, or a refresh-loop live view, respectively
(see ``docs/OBSERVABILITY.md``, "Watching a live run").

``flows`` reads a ``--flows`` artifact (live or finished, torn-tail
tolerant like ``status``) and prints the merged traffic view:
``summary`` (totals, intra/transit shares), ``matrix`` (ISP×ISP bytes
and datagrams, ``--by-kind`` for the per-message-kind split),
``windows`` (the tumbling-window locality time-series) or ``top`` (the
heaviest peer-pair flows) — see ``docs/OBSERVABILITY.md``,
"Traffic flows".

Observability flags (see ``docs/OBSERVABILITY.md``):

* ``--metrics PATH``  — dump the metrics registry after the run
  (JSONL, or CSV when PATH ends in ``.csv``),
* ``--trace PATH``    — stream structured trace records to a JSONL file,
* ``--spans PATH``    — record causal transaction spans: Chrome
  trace-event JSON when PATH ends in ``.json`` (opens in Perfetto /
  ``chrome://tracing``), streaming JSONL otherwise,
* ``--log-level L``   — bridge trace records into stdlib logging on
  stderr at level ``L`` (debug|info|warning|error),
* ``--progress``      — print heartbeat progress lines to stderr,
* ``--progress-jsonl PATH`` — stream the run's progress bus (run
  start, heartbeats, per-day/per-job completions, terminal summary)
  to PATH as append-only JSONL; readable mid-run by ``repro status``
  / ``repro top``.  The ``run_summary`` footer is written even when
  the run crashes or is interrupted,
* ``--flows PATH``    — account every delivered datagram into the
  streaming traffic-flow ledger (ISP×ISP matrix, windowed locality,
  top-k peer-pair flows) and write the versioned JSONL artifact to
  PATH; ``--flows-window`` / ``--flows-top`` tune the ledger.  Read
  it with ``repro flows``.

Without any of these flags the simulator runs completely
uninstrumented and its output is byte-identical to earlier releases.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import io
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from . import __version__
from .checkpoint import CheckpointError
from .experiments import (ALL_EXPERIMENT_IDS, EXPERIMENT_DESCRIPTIONS,
                          Scale, WorkloadBank, run_experiment)
from .obs import (ChromeTraceSink, EngineProfiler, FlowSpec, FlowsWriter,
                  Instrumentation, JsonlSink, JsonlSpanSink, LoggingSink,
                  ProgressBus, TeeSink, flows_summary_payload,
                  level_from_name, read_flows, read_progress,
                  render_flow_matrix, render_flow_summary,
                  render_flow_top, render_flow_windows, render_status,
                  summarize_flows, summarize_progress, write_metrics_csv,
                  write_metrics_jsonl)

_LOG_LEVELS = ("debug", "info", "warning", "error")

#: Default trend file the ``report`` subcommand appends to.
DEFAULT_TREND_PATH = "benchmarks/results/trend.jsonl"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from 'A Case Study of "
                    "Traffic Locality in Internet P2P Live Streaming "
                    "Systems' (ICDCS 2009).")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument(
        "experiment",
        # Generated from the registry so this help can never list an
        # experiment the registry doesn't have (or miss one it does).
        help=f"experiment id ({', '.join(ALL_EXPERIMENT_IDS)}), 'all' "
             f"for every single-session experiment, 'list', or 'report'")
    parser.add_argument(
        "--scale", choices=[s.value for s in Scale], default="small",
        help="workload scale (default: small; 'full' is the paper's "
             "2-hour sessions)")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed (default: 7)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parallelisable experiments (the "
             "fig06 campaign, the chaos session pair, the resilience "
             "sweep); results are "
             "byte-identical for every N (default: 1 = serial "
             "in-process)")
    parser.add_argument(
        "--faults", metavar="PATH", default=None,
        help="JSON fault schedule (repro.faults.FaultSchedule) armed "
             "onto the simulated sessions; 'chaos' uses it as the "
             "injected storm (default: a built-in demo storm)")
    parser.add_argument(
        "--json", action="store_true",
        help="with 'list': emit the experiment registry as JSON")
    ckpt_group = parser.add_argument_group(
        "checkpointing (fig06 campaign and resilience sweep; see "
        "docs/CHECKPOINT.md)")
    ckpt_group.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="persist completed campaign (program, day) units to DIR "
             "as atomic, digest-stamped artifacts; a killed run "
             "restarts from them with --resume")
    ckpt_group.add_argument(
        "--resume", metavar="DIR", default=None,
        help="resume a campaign from the checkpoint in DIR (and keep "
             "checkpointing new units there); the result is "
             "byte-identical to an uninterrupted run")
    ckpt_group.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="flush completed units to the checkpoint in batches of N "
             "(default: 1 = after every unit; larger N trades re-work "
             "after a kill for fewer fsyncs)")
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the metrics registry to PATH after the run "
             "(JSONL; CSV when PATH ends in .csv)")
    obs_group.add_argument(
        "--trace", metavar="PATH", default=None,
        help="stream structured trace records to PATH as JSONL")
    obs_group.add_argument(
        "--spans", metavar="PATH", default=None,
        help="record causal transaction spans to PATH: Chrome "
             "trace-event JSON when PATH ends in .json (Perfetto / "
             "chrome://tracing), streaming JSONL otherwise")
    obs_group.add_argument(
        "--log-level", choices=_LOG_LEVELS, default=None,
        help="also log trace records to stderr via stdlib logging at "
             "this severity")
    obs_group.add_argument(
        "--progress", action="store_true",
        help="print periodic heartbeat progress lines to stderr")
    obs_group.add_argument(
        "--progress-jsonl", metavar="PATH", default=None,
        help="stream the live progress bus to PATH as append-only "
             "JSONL (tail it, or point 'repro status' / 'repro top' "
             "at it while the run executes)")
    obs_group.add_argument(
        "--flows", metavar="PATH", default=None,
        help="account delivered traffic in the streaming flow ledger "
             "(ISP×ISP matrix, windowed locality, top-k peer pairs) "
             "and write the JSONL artifact to PATH; read it with "
             "'repro flows'")
    obs_group.add_argument(
        "--flows-window", type=float, default=60.0, metavar="SECONDS",
        help="flow-ledger tumbling-window length in simulated seconds "
             "(default: 60)")
    obs_group.add_argument(
        "--flows-top", type=int, default=32, metavar="K",
        help="capacity of the flow ledger's top-k peer-pair sketch "
             "(default: 32)")
    return parser


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the engine/campaign micro-benchmarks and write "
                    "the machine-readable perf baselines BENCH_engine.json "
                    "and BENCH_campaign.json (see docs/PERFORMANCE.md).")
    parser.add_argument(
        "--quick", action="store_true",
        help="run only the quick profiles (CI smoke)")
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when a measured golden digest drifts from "
             "the committed baseline in --baseline-dir")
    parser.add_argument(
        "--only", choices=("engine", "campaign"), default=None,
        help="run just one of the two benchmarks")
    parser.add_argument(
        "--out-dir", metavar="DIR", default=".",
        help="directory for the BENCH_*.json artifacts (default: .)")
    parser.add_argument(
        "--baseline-dir", metavar="DIR", default=None,
        help="where the committed baselines live for --check "
             "(default: --out-dir)")
    parser.add_argument("--seed", type=int, default=7,
                        help="engine bench master seed (default: 7)")
    parser.add_argument(
        "--campaign-seed", type=int, default=11,
        help="campaign bench master seed (default: 11, the golden seed)")
    parser.add_argument(
        "--diff", nargs="*", metavar="ARTIFACT", default=None,
        help="with two paths: compare those bench artifacts and exit "
             "(no benches run); with no paths: run the benches and "
             "diff the fresh numbers against the committed baselines")
    parser.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRACTION",
        help="events/sec drop beyond this fraction fails --diff "
             "(default: 0.10)")
    return parser


def _bench(argv: List[str]) -> int:
    from .experiments.bench import run_bench, run_bench_diff
    args = build_bench_parser().parse_args(argv)
    if args.diff is not None and len(args.diff) == 2:
        return run_bench_diff(Path(args.diff[0]), Path(args.diff[1]),
                              threshold=args.threshold)
    if args.diff is not None and args.diff:
        print("--diff takes exactly two artifact paths, or none to "
              "diff a fresh run against the committed baselines",
              file=sys.stderr)
        return 2
    return run_bench(Path(args.out_dir), quick=args.quick,
                     check=args.check,
                     baseline_dir=Path(args.baseline_dir)
                     if args.baseline_dir else None,
                     only=args.only, engine_seed=args.seed,
                     campaign_seed=args.campaign_seed,
                     diff_baseline=args.diff is not None,
                     threshold=args.threshold)


def build_status_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro status",
        description="One-shot summary of a run's --progress-jsonl "
                    "artifact: state, sim/campaign progress, engine "
                    "throughput, swarm composition, ETA.  Works on "
                    "finished runs and mid-flight ones (a torn final "
                    "line is tolerated).")
    parser.add_argument("path",
                        help="progress.jsonl artifact (live or finished)")
    parser.add_argument("--json", action="store_true",
                        help="emit the status summary as JSON")
    return parser


def _read_summary(path: str):
    """Progress records -> status summary, or (None, exit_code)."""
    try:
        records, tail = read_progress(path, with_tail=True)
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return None, 2
    except ValueError as exc:
        print(f"corrupt progress stream {path}: {exc}", file=sys.stderr)
        return None, 2
    if not records and tail:
        # Nothing but a torn fragment of the first record: the run is
        # alive but there is no status to report yet.  Distinct from an
        # empty file (exit 0, "no records yet").
        print(f"{path}: no complete records yet (the first line is "
              f"still being written); try again shortly",
              file=sys.stderr)
        return None, 1
    return summarize_progress(records), 0


def _status(argv: List[str]) -> int:
    args = build_status_parser().parse_args(argv)
    summary, code = _read_summary(args.path)
    if summary is None:
        return code
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_status(summary, source=args.path))
    return 0


def build_top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Refresh-loop live view of a run's --progress-jsonl "
                    "artifact; exits when the run finishes (or on "
                    "Ctrl-C).")
    parser.add_argument("path",
                        help="progress.jsonl artifact (live or finished)")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="refresh interval (default: 2.0)")
    parser.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N refreshes (default: 0 = until the run "
             "finishes)")
    return parser


def _top(argv: List[str]) -> int:
    args = build_top_parser().parse_args(argv)
    refreshes = 0
    try:
        while True:
            summary, code = _read_summary(args.path)
            if summary is None:
                return code
            if sys.stdout.isatty():  # pragma: no cover - interactive only
                print("\x1b[2J\x1b[H", end="")
            print(render_status(summary, source=args.path))
            sys.stdout.flush()
            refreshes += 1
            if args.iterations and refreshes >= args.iterations:
                return 0
            if summary.get("state") not in ("empty", "running"):
                return 0  # the footer landed: nothing more will arrive
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def build_flows_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro flows",
        description="Inspect a run's --flows artifact: merged traffic "
                    "totals, the ISP×ISP matrix, the windowed locality "
                    "time-series, or the heaviest peer-pair flows.  "
                    "Works on finished runs and mid-flight ones (a "
                    "torn final line is tolerated).")
    parser.add_argument("view",
                        choices=("summary", "matrix", "windows", "top"),
                        help="which traffic view to print")
    parser.add_argument("path",
                        help="flows.jsonl artifact (live or finished)")
    parser.add_argument("--json", action="store_true",
                        help="emit the view as JSON")
    parser.add_argument("--by-kind", action="store_true",
                        help="with 'matrix': keep the per-message-kind "
                             "split instead of folding kinds together")
    parser.add_argument("--limit", type=int, default=0, metavar="N",
                        help="with 'top': print only the N heaviest "
                             "flows (default: 0 = all tracked)")
    return parser


def _flows(argv: List[str]) -> int:
    args = build_flows_parser().parse_args(argv)
    try:
        records, tail = read_flows(args.path, with_tail=True)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"corrupt flows artifact {args.path}: {exc}",
              file=sys.stderr)
        return 2
    if not records and tail:
        print(f"{args.path}: no complete records yet (the first line "
              f"is still being written); try again shortly",
              file=sys.stderr)
        return 1
    if args.view == "summary":
        summary = summarize_flows(records)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_flow_summary(summary, source=args.path))
        return 0
    payload = flows_summary_payload(records)
    if payload is None:
        print(f"{args.path}: no unit flow records yet — the ledger "
              f"reports each session/campaign unit as it finishes",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.view == "matrix":
        print(render_flow_matrix(payload, by_kind=args.by_kind))
    elif args.view == "windows":
        print(render_flow_windows(payload))
    else:
        print(render_flow_top(payload, limit=args.limit or None))
    return 0


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Build the run-fidelity scorecard: reproduced "
                    "paper statistics vs target ranges, plus engine "
                    "perf, appended to the benchmark trend file.")
    parser.add_argument(
        "--scale", choices=[s.value for s in Scale], default="small",
        help="workload scale for the scored runs (default: small)")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed (default: 7)")
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the scorecard to PATH (default: stdout)")
    parser.add_argument(
        "--format", choices=("markdown", "html"), default=None,
        help="output format (default: by --out extension, else "
             "markdown)")
    parser.add_argument(
        "--label", default="", help="free-form label recorded in the "
                                    "scorecard and the trend record")
    parser.add_argument(
        "--metrics-in", metavar="PATH", default=None,
        help="fold a finished run's --metrics JSONL artifact into the "
             "perf block instead of this run's own numbers")
    parser.add_argument(
        "--spans-in", metavar="PATH", default=None,
        help="fold a finished run's --spans artifact (JSONL or Chrome "
             "trace) into the perf block's span count")
    parser.add_argument(
        "--trend", metavar="PATH", default=DEFAULT_TREND_PATH,
        help=f"trend file to append the JSON record to (default: "
             f"{DEFAULT_TREND_PATH})")
    parser.add_argument(
        "--no-trend", action="store_true",
        help="skip the trend.jsonl append")
    return parser


def build_instrumentation(args) -> Optional[Instrumentation]:
    """An enabled bundle when any obs flag was given, else ``None``."""
    if not (args.metrics or args.trace or args.spans or args.log_level
            or args.progress or args.progress_jsonl
            or getattr(args, "flows", None)):
        return None
    trace_level = level_from_name(args.log_level or "info")
    sinks = []
    if args.trace:
        sinks.append(JsonlSink(args.trace, level=trace_level))
    if args.log_level:
        logging.basicConfig(stream=sys.stderr, level=trace_level,
                            format="%(levelname)s %(name)s %(message)s")
        sinks.append(LoggingSink(logging.getLogger("repro"),
                                 level=trace_level))
    if len(sinks) > 1:
        sink = TeeSink(sinks)
    elif sinks:
        sink = sinks[0]
    else:
        sink = None
    spans = None
    if args.spans:
        spans = ChromeTraceSink(args.spans) if args.spans.endswith(".json") \
            else JsonlSpanSink(args.spans)
    progress_bus = ProgressBus(args.progress_jsonl) \
        if args.progress_jsonl else None
    flows = None
    if getattr(args, "flows", None):
        spec = FlowSpec(window=args.flows_window, top_k=args.flows_top)
        try:
            spec.validate()
        except ValueError as exc:
            raise SystemExit(f"bad --flows configuration: {exc}")
        flows = FlowsWriter(args.flows, spec)
    return Instrumentation(trace=sink, spans=spans,
                           profiler=EngineProfiler(),
                           progress=args.progress,
                           progress_bus=progress_bus,
                           flows=flows)


def _write_metrics(obs: Instrumentation, path: str) -> int:
    if path.endswith(".csv"):
        return write_metrics_csv(obs.metrics, path)
    return write_metrics_jsonl(obs.metrics, path)


def _run_one(experiment_id: str, bank: WorkloadBank, scale: Scale,
             seed: int,
             instrumentation: Optional[Instrumentation] = None,
             jobs: int = 1, faults=None, checkpoint=None) -> None:
    started = time.time()
    result = run_experiment(experiment_id, bank=bank, scale=scale,
                            seed=seed, instrumentation=instrumentation,
                            jobs=jobs, faults=faults,
                            checkpoint=checkpoint)
    elapsed = time.time() - started
    print(result.render())
    print(f"[{experiment_id} regenerated in {elapsed:.1f}s]")
    print()


def _list_experiments(as_json: bool) -> int:
    # Strict registry lookups: an experiment id without a description
    # is a registration bug and must fail loudly here (and in the
    # registry/CLI sync test), not silently print an empty column.
    if as_json:
        from .experiments.collect import PAPER_TARGETS
        records = [{"id": experiment_id,
                    "description": EXPERIMENT_DESCRIPTIONS[experiment_id],
                    "paper": PAPER_TARGETS.get(experiment_id, "")}
                   for experiment_id in ALL_EXPERIMENT_IDS]
        print(json.dumps(records, indent=2))
        return 0
    width = max(len(eid) for eid in ALL_EXPERIMENT_IDS) + 2
    for experiment_id in ALL_EXPERIMENT_IDS:
        description = EXPERIMENT_DESCRIPTIONS[experiment_id]
        print(f"{experiment_id:<{width}}{description}".rstrip())
    return 0


def _report(argv: List[str]) -> int:
    from .experiments.scorecard import (append_trend, build_scorecard,
                                        perf_from_artifacts)
    args = build_report_parser().parse_args(argv)
    card = build_scorecard(scale=Scale(args.scale), seed=args.seed,
                           label=args.label)
    if args.metrics_in or args.spans_in:
        card.perf = perf_from_artifacts(args.metrics_in, args.spans_in)

    fmt = args.format
    if fmt is None:
        fmt = "html" if (args.out or "").endswith((".html", ".htm")) \
            else "markdown"
    rendered = card.render_html() if fmt == "html" \
        else card.render_markdown()
    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(f"[scorecard: {card.passed}/{card.scored} in range "
              f"-> {args.out}]", file=sys.stderr)
    else:
        print(rendered)
    if not args.no_trend:
        append_trend(card, Path(args.trend))
        print(f"[trend record appended -> {args.trend}]",
              file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:  # e.g. `repro list | head`
        # The reader went away; reopen stdout on devnull so the
        # interpreter's shutdown flush does not raise again (skipped
        # when stdout has no real file descriptor, e.g. under pytest).
        try:
            devnull = open(os.devnull, "w")
            os.dup2(devnull.fileno(), sys.stdout.fileno())
        except (OSError, ValueError, io.UnsupportedOperation):
            pass
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "run":
        argv = argv[1:]  # "repro run fig06" == "repro fig06"
    if argv and argv[0] == "report":
        return _report(argv[1:])
    if argv and argv[0] == "bench":
        return _bench(argv[1:])
    if argv and argv[0] in ("status", "top"):
        handler = _status if argv[0] == "status" else _top
        return handler(argv[1:])
    if argv and argv[0] == "flows":
        return _flows(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        return _list_experiments(args.json)
    if args.experiment == "report":
        # "repro report" with main-parser flags only; re-route the
        # shared ones so both spellings work.
        forwarded = ["--scale", args.scale, "--seed", str(args.seed)]
        return _report(forwarded)

    checkpoint = None
    if args.checkpoint and args.resume:
        print("--checkpoint starts a fresh checkpoint and --resume "
              "continues an existing one; pass exactly one of them",
              file=sys.stderr)
        return 2
    if args.checkpoint or args.resume:
        if args.experiment not in ("fig06", "resilience"):
            print(f"--checkpoint/--resume only apply to the fig06 "
                  f"campaign and the resilience sweep, not "
                  f"{args.experiment!r}", file=sys.stderr)
            return 2
        if args.checkpoint_every < 1:
            print(f"--checkpoint-every must be >= 1, got "
                  f"{args.checkpoint_every}", file=sys.stderr)
            return 2
        from .checkpoint import CheckpointPolicy
        checkpoint = CheckpointPolicy(
            path=args.resume or args.checkpoint,
            every=args.checkpoint_every, resume=bool(args.resume))
    elif args.checkpoint_every != 1:
        print("--checkpoint-every needs --checkpoint or --resume",
              file=sys.stderr)
        return 2

    obs = build_instrumentation(args)
    scale = Scale(args.scale)
    faults = None
    if args.faults:
        from .faults import FaultSchedule
        try:
            faults = FaultSchedule.load(args.faults)
        except (OSError, ValueError) as exc:
            print(f"bad fault schedule {args.faults}: {exc}",
                  file=sys.stderr)
            return 2
    bank = WorkloadBank(instrumentation=obs, faults=faults)
    # Shared with the run_summary footer: the except handlers below
    # rewrite the status before cleanup unwinds.
    run_state = {"status": "ok"}
    # LIFO cleanup with *independent* steps: closing the sinks must
    # happen even when finalize or the metrics write raises, so a
    # crashed run still flushes its partial JSONL artifacts.
    with contextlib.ExitStack() as cleanup:
        if obs is not None:
            cleanup.callback(obs.close)
            if obs.progress_bus is not None:
                # Registered right after close -> runs just before it:
                # the footer lands even on crash/Ctrl-C, after the
                # metrics flush (so the event total is final).
                def _footer() -> None:
                    events = obs.metrics.get("sim.events_executed")
                    obs.progress_bus.run_summary(
                        run_state["status"],
                        experiment=args.experiment,
                        events_executed=int(events.value)
                        if events is not None else 0)
                    print(f"[progress ({run_state['status']}) -> "
                          f"{args.progress_jsonl}]", file=sys.stderr)
                cleanup.callback(_footer)
            if args.flows:
                # The flows_summary footer itself lands in obs.close
                # (registered first, so run last even on crash).
                cleanup.callback(
                    lambda: print(f"[flows -> {args.flows}]",
                                  file=sys.stderr))
            if args.trace:
                cleanup.callback(
                    lambda: print(f"[trace -> {args.trace}]",
                                  file=sys.stderr))
            if args.spans:
                cleanup.callback(
                    lambda: print(f"[spans -> {args.spans}]",
                                  file=sys.stderr))
            if args.metrics:
                def _flush_metrics() -> None:
                    count = _write_metrics(obs, args.metrics)
                    print(f"[metrics: {count} series -> {args.metrics}]",
                          file=sys.stderr)
                cleanup.callback(_flush_metrics)
            cleanup.callback(obs.finalize)
            if obs.progress_bus is not None:
                obs.progress_bus.run_start(
                    experiment=args.experiment, scale=args.scale,
                    seed=args.seed, jobs=args.jobs)

        try:
            if args.experiment == "all":
                for experiment_id in ALL_EXPERIMENT_IDS:
                    if experiment_id in ("fig06", "chaos",
                                         "resilience"):
                        continue  # slower standalone runs: invoke explicitly
                    _run_one(experiment_id, bank, scale, args.seed,
                             instrumentation=obs, jobs=args.jobs,
                             faults=faults)
                print("(fig06, chaos and resilience skipped by 'all'; "
                      "run them explicitly, e.g. 'python -m repro "
                      "chaos')")
                return 0

            if args.experiment not in ALL_EXPERIMENT_IDS:
                print(f"unknown experiment {args.experiment!r}; "
                      f"try 'list'", file=sys.stderr)
                return 2
            _run_one(args.experiment, bank, scale, args.seed,
                     instrumentation=obs, jobs=args.jobs, faults=faults,
                     checkpoint=checkpoint)
            return 0
        except KeyboardInterrupt:
            run_state["status"] = "interrupted"
            raise
        except CheckpointError as exc:
            run_state["status"] = "error:checkpoint"
            print(f"checkpoint error: {exc}", file=sys.stderr)
            return 2
        except BaseException as exc:
            run_state["status"] = f"crashed:{type(exc).__name__}"
            raise


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
