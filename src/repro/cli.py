"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro list
    python -m repro fig02 [--scale small|default|full] [--seed N]
    python -m repro fig02 --metrics m.jsonl --trace t.jsonl --progress
    python -m repro table1
    python -m repro all --scale small
    python -m repro run fig06 --jobs 4

``all`` runs every single-session figure and Table 1 (the four canonical
sessions are simulated once and shared); ``fig06`` runs the campaign and
is therefore much slower.  A leading ``run`` token is accepted and
ignored (``repro run fig06`` == ``repro fig06``); ``--jobs N`` fans
parallelisable experiments — currently the fig06 campaign — out to N
worker processes with byte-identical output (see ``docs/PARALLEL.md``).

Observability flags (see ``docs/OBSERVABILITY.md``):

* ``--metrics PATH``  — dump the metrics registry after the run
  (JSONL, or CSV when PATH ends in ``.csv``),
* ``--trace PATH``    — stream structured trace records to a JSONL file,
* ``--log-level L``   — bridge trace records into stdlib logging on
  stderr at level ``L`` (debug|info|warning|error),
* ``--progress``      — print heartbeat progress lines to stderr.

Without any of these flags the simulator runs completely
uninstrumented and its output is byte-identical to earlier releases.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from typing import List, Optional

from . import __version__
from .experiments import (ALL_EXPERIMENT_IDS, EXPERIMENT_DESCRIPTIONS,
                          Scale, WorkloadBank, run_experiment)
from .obs import (EngineProfiler, Instrumentation, JsonlSink, LoggingSink,
                  TeeSink, level_from_name, write_metrics_csv,
                  write_metrics_jsonl)

_LOG_LEVELS = ("debug", "info", "warning", "error")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from 'A Case Study of "
                    "Traffic Locality in Internet P2P Live Streaming "
                    "Systems' (ICDCS 2009).")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument(
        "experiment",
        help="experiment id (fig02..fig18, table1), 'all' for every "
             "single-session experiment, or 'list'")
    parser.add_argument(
        "--scale", choices=[s.value for s in Scale], default="small",
        help="workload scale (default: small; 'full' is the paper's "
             "2-hour sessions)")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed (default: 7)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for parallelisable experiments (the "
             "fig06 campaign); results are byte-identical for every N "
             "(default: 1 = serial in-process)")
    obs_group = parser.add_argument_group("observability")
    obs_group.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write the metrics registry to PATH after the run "
             "(JSONL; CSV when PATH ends in .csv)")
    obs_group.add_argument(
        "--trace", metavar="PATH", default=None,
        help="stream structured trace records to PATH as JSONL")
    obs_group.add_argument(
        "--log-level", choices=_LOG_LEVELS, default=None,
        help="also log trace records to stderr via stdlib logging at "
             "this severity")
    obs_group.add_argument(
        "--progress", action="store_true",
        help="print periodic heartbeat progress lines to stderr")
    return parser


def build_instrumentation(args) -> Optional[Instrumentation]:
    """An enabled bundle when any obs flag was given, else ``None``."""
    if not (args.metrics or args.trace or args.log_level or args.progress):
        return None
    trace_level = level_from_name(args.log_level or "info")
    sinks = []
    if args.trace:
        sinks.append(JsonlSink(args.trace, level=trace_level))
    if args.log_level:
        logging.basicConfig(stream=sys.stderr, level=trace_level,
                            format="%(levelname)s %(name)s %(message)s")
        sinks.append(LoggingSink(logging.getLogger("repro"),
                                 level=trace_level))
    if len(sinks) > 1:
        sink = TeeSink(sinks)
    elif sinks:
        sink = sinks[0]
    else:
        sink = None
    return Instrumentation(trace=sink, profiler=EngineProfiler(),
                           progress=args.progress)


def _write_metrics(obs: Instrumentation, path: str) -> int:
    if path.endswith(".csv"):
        return write_metrics_csv(obs.metrics, path)
    return write_metrics_jsonl(obs.metrics, path)


def _run_one(experiment_id: str, bank: WorkloadBank, scale: Scale,
             seed: int,
             instrumentation: Optional[Instrumentation] = None,
             jobs: int = 1) -> None:
    started = time.time()
    result = run_experiment(experiment_id, bank=bank, scale=scale,
                            seed=seed, instrumentation=instrumentation,
                            jobs=jobs)
    elapsed = time.time() - started
    print(result.render())
    print(f"[{experiment_id} regenerated in {elapsed:.1f}s]")
    print()


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "run":
        argv = argv[1:]  # "repro run fig06" == "repro fig06"
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        width = max(len(eid) for eid in ALL_EXPERIMENT_IDS) + 2
        for experiment_id in ALL_EXPERIMENT_IDS:
            description = EXPERIMENT_DESCRIPTIONS.get(experiment_id, "")
            print(f"{experiment_id:<{width}}{description}".rstrip())
        return 0

    obs = build_instrumentation(args)
    scale = Scale(args.scale)
    bank = WorkloadBank(instrumentation=obs)
    try:
        if args.experiment == "all":
            for experiment_id in ALL_EXPERIMENT_IDS:
                if experiment_id == "fig06":
                    continue  # campaign: run explicitly, it is much slower
                _run_one(experiment_id, bank, scale, args.seed,
                         instrumentation=obs, jobs=args.jobs)
            print("(fig06 skipped by 'all'; run 'python -m repro fig06' "
                  "explicitly)")
            return 0

        if args.experiment not in ALL_EXPERIMENT_IDS:
            print(f"unknown experiment {args.experiment!r}; "
                  f"try 'list'", file=sys.stderr)
            return 2
        _run_one(args.experiment, bank, scale, args.seed,
                 instrumentation=obs, jobs=args.jobs)
        return 0
    finally:
        if obs is not None:
            obs.finalize()
            if args.metrics:
                count = _write_metrics(obs, args.metrics)
                print(f"[metrics: {count} series -> {args.metrics}]",
                      file=sys.stderr)
            if args.trace:
                print(f"[trace -> {args.trace}]", file=sys.stderr)
            obs.close()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
