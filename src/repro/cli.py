"""Command-line entry point: regenerate paper experiments.

Usage::

    python -m repro list
    python -m repro fig02 [--scale small|default|full] [--seed N]
    python -m repro table1
    python -m repro all --scale small

``all`` runs every single-session figure and Table 1 (the four canonical
sessions are simulated once and shared); ``fig06`` runs the campaign and
is therefore much slower.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import (ALL_EXPERIMENT_IDS, Scale, WorkloadBank,
                          run_experiment)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures from 'A Case Study of "
                    "Traffic Locality in Internet P2P Live Streaming "
                    "Systems' (ICDCS 2009).")
    parser.add_argument(
        "experiment",
        help="experiment id (fig02..fig18, table1), 'all' for every "
             "single-session experiment, or 'list'")
    parser.add_argument(
        "--scale", choices=[s.value for s in Scale], default="small",
        help="workload scale (default: small; 'full' is the paper's "
             "2-hour sessions)")
    parser.add_argument("--seed", type=int, default=7,
                        help="master seed (default: 7)")
    return parser


def _run_one(experiment_id: str, bank: WorkloadBank, scale: Scale,
             seed: int) -> None:
    started = time.time()
    result = run_experiment(experiment_id, bank=bank, scale=scale,
                            seed=seed)
    elapsed = time.time() - started
    print(result.render())
    print(f"[{experiment_id} regenerated in {elapsed:.1f}s]")
    print()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for experiment_id in ALL_EXPERIMENT_IDS:
            print(experiment_id)
        return 0

    scale = Scale(args.scale)
    bank = WorkloadBank()
    if args.experiment == "all":
        for experiment_id in ALL_EXPERIMENT_IDS:
            if experiment_id == "fig06":
                continue  # campaign: run explicitly, it is much slower
            _run_one(experiment_id, bank, scale, args.seed)
        print("(fig06 skipped by 'all'; run 'python -m repro fig06' "
              "explicitly)")
        return 0

    if args.experiment not in ALL_EXPERIMENT_IDS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try 'list'", file=sys.stderr)
        return 2
    _run_one(args.experiment, bank, scale, args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
