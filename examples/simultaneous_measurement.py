#!/usr/bin/env python3
"""The paper's actual measurement setup: both programs at once.

The authors had all probe hosts "join the PPLive live streaming programs
simultaneously" — popular and unpopular channels broadcast over the same
bootstrap server and tracker groups.  This example runs that shared-
infrastructure world: two channels, four probes (TELE and Mason on
each), one simulation.
"""

from repro.analysis import locality_breakdown
from repro.workload.multichannel import (MultiChannelScenario,
                                         paper_channel_pair)


def main() -> None:
    print("running popular + unpopular programs over shared "
          "infrastructure ...")
    scenario = MultiChannelScenario(
        paper_channel_pair(popular_population=40,
                           unpopular_population=14),
        seed=7, warmup=150.0, duration=420.0)
    result = scenario.run()

    print()
    print(f"{'probe':<18} {'txns':>6} {'locality':>9} {'continuity':>11}")
    print("-" * 48)
    for name in result.probe_names():
        probe = result.probe(name)
        breakdown = locality_breakdown(probe.trace, probe.report.data,
                                       result.directory,
                                       result.infrastructure)
        player = probe.peer.player
        continuity = (f"{player.continuity_index:.2f}"
                      if player is not None else "n/a")
        print(f"{name:<18} {len(probe.report.data):>6} "
              f"{breakdown.locality:>8.1%} {continuity:>11}")

    print()
    tracker = result.deployment.trackers[0]
    print(f"shared tracker knows {len(tracker.active_peers(1))} peers on "
          f"channel 1 and {len(tracker.active_peers(2))} on channel 2")
    print("(one bootstrap, five tracker groups, one source per channel — "
          "as reverse-engineered in the paper's Figure 1)")


if __name__ == "__main__":
    main()
