#!/usr/bin/env python3
"""Popular vs unpopular channel locality — the paper's Figures 2-3 story.

Runs the two TELE-probe workloads (a popular and an unpopular live
channel) and prints the locality panels side by side: the ISP mix of the
returned peer lists, the download byte mix, and the per-neighbor
concentration with its stretched-exponential fit.

Takes a few minutes at the default (reduced) scale.
"""

from repro.experiments import (Scale, WorkloadBank, contribution_figure,
                               locality_figure)


def main() -> None:
    bank = WorkloadBank()
    seed = 7
    scale = Scale.SMALL  # bump to Scale.DEFAULT for steadier numbers

    print("running the TELE-probe popular-channel session ...")
    popular = bank.tele_popular(scale=scale, seed=seed)
    print("running the TELE-probe unpopular-channel session ...")
    unpopular = bank.tele_unpopular(scale=scale, seed=seed)

    for session, fig_id, caption in (
            (popular, "fig02", "popular program"),
            (unpopular, "fig03", "unpopular program")):
        figure = locality_figure(session, fig_id,
                                 f"China-TELE probe, {caption}")
        print()
        print(figure.render())

        contributions = contribution_figure(session, fig_id.replace(
            "fig0", "fig1"), f"contributions, {caption}")
        print()
        print(contributions.render())

    pop_loc = locality_figure(popular, "x", "").breakdown.locality
    unpop_loc = locality_figure(unpopular, "x", "").breakdown.locality
    print()
    print(f"summary: popular locality {pop_loc:.1%} vs "
          f"unpopular {unpop_loc:.1%}")
    print("(the paper reports ~85% vs ~55% on its 2-hour 2008 traces)")


if __name__ == "__main__":
    main()
