#!/usr/bin/env python3
"""Quickstart: run one measured PPLive viewing session and analyse it.

This is the minimal end-to-end tour of the library:

1. build a simulated Internet and a PPLive-style deployment,
2. let a small audience watch a popular live channel,
3. join an instrumented probe client in ChinaTelecom (like the paper's
   TELE hosts) and capture all of its packets,
4. reproduce the paper's headline metric — the fraction of streaming
   bytes served by peers in the probe's own ISP.

Runs in well under a minute.  For the paper-scale workloads see the
``benchmarks/`` suite.
"""

from repro import ScenarioConfig, locality_breakdown, run_session
from repro.analysis import (analyze_contributions, data_response_series,
                            format_category_counter, format_seconds,
                            locality_timeline, timeline_summary)

def main() -> None:
    config = ScenarioConfig(
        seed=7,
        population=40,       # concurrent audience
        duration=420.0,      # the probe watches for 7 minutes
        warmup=150.0,        # the swarm forms before the probe joins
    )
    print(f"simulating a {config.population}-viewer popular channel ...")
    result = run_session(config)

    probe = result.probe()
    print(f"probe: {probe.address} "
          f"({result.directory.category_of(probe.address)})")
    print(f"captured packets: {len(probe.trace)}")
    print(f"matched data transactions: {len(probe.report.data)}")

    breakdown = locality_breakdown(probe.trace, probe.report.data,
                                   result.directory, result.infrastructure)
    print()
    print("returned peer-list entries by ISP:")
    print("  " + format_category_counter(breakdown.returned_counts))
    print("downloaded bytes by ISP:")
    print("  " + format_category_counter(breakdown.bytes))
    print(f"traffic locality (own-ISP byte share): "
          f"{breakdown.locality:.1%}")

    contributions = analyze_contributions(
        probe.report.data, result.directory, result.infrastructure)
    if contributions.top10_byte_share is not None:
        print(f"top 10% of connected peers uploaded "
              f"{contributions.top10_byte_share:.1%} of the bytes "
              f"({contributions.connected_unique} peers connected)")

    responses = data_response_series(probe.report.data, result.directory,
                                     result.infrastructure)
    print("average data response time by replier group:")
    for group, series in responses.items():
        print(f"  {group}: {format_seconds(series.average)} s "
              f"({series.count} replies)")

    own_category = result.directory.category_of(probe.address)
    timeline = locality_timeline(probe.report.data, result.directory,
                                 own_category, window=120.0,
                                 infrastructure=result.infrastructure)
    summary = timeline_summary(timeline)
    if summary:
        print(f"locality through the session: min {summary['min']:.0%} / "
              f"mean {summary['mean']:.0%} / max {summary['max']:.0%} "
              f"over {summary['samples']} windows")

    player = probe.peer.player
    if player is not None:
        print(f"playback: continuity={player.continuity_index:.2f} "
              f"stalls={player.stall_count} "
              f"startup={player.startup_delay and round(player.startup_delay, 1)}s")


if __name__ == "__main__":
    main()
