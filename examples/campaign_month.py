#!/usr/bin/env python3
"""A miniature four-week measurement campaign (the paper's Figure 6).

Simulates one viewing session per day for each of the popular and
unpopular programs, with two probes in each of ChinaNetcom, ChinaTelecom
and a US campus (Mason), and prints the daily traffic-locality series.

The full 28-day campaign takes a while; this example runs a single week
by default — pass a day count on the command line for more, e.g.::

    python examples/campaign_month.py 28
"""

import sys

from repro.experiments.fig06 import figure6
from repro.streaming.video import Popularity
from repro.workload.campaign import CampaignConfig


def main() -> None:
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    print(f"running a {days}-day campaign "
          f"(2 probes each in CNC, TELE, Mason) ...")
    config = CampaignConfig(
        seed=11,
        days=days,
        popular_population=40,
        unpopular_population=16,
        session_duration=300.0,
        warmup=120.0,
    )
    figure = figure6(config)
    print()
    print(figure.render())
    print()
    mason_swing = figure.variability(Popularity.POPULAR, "Mason")
    tele_swing = figure.variability(Popularity.POPULAR, "TELE")
    print(f"day-to-day swing, popular program: Mason "
          f"{mason_swing:.1f} points vs TELE {tele_swing:.1f} points")
    print("(the paper's Mason curves vary wildly because a program "
          "popular in China need not be popular abroad)")


if __name__ == "__main__":
    main()
