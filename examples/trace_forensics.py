#!/usr/bin/env python3
"""Trace forensics: save a capture, reload it, re-run the analysis.

The authors kept 130 GB of Wireshark captures and analysed them offline;
this example shows the equivalent workflow on the simulated system:

1. capture a probe session into a :class:`TraceStore`,
2. persist it as JSON-lines (the library's interchange format),
3. reload the file cold and reproduce the same statistics — proving the
   analysis pipeline needs nothing but the trace.
"""

import tempfile
from pathlib import Path

from repro import ScenarioConfig, run_session
from repro.analysis import (analyze_requests_vs_rtt, requests_per_peer,
                            rtt_estimates)
from repro.capture import TraceStore, match_all


def main() -> None:
    print("capturing a probe session ...")
    result = run_session(ScenarioConfig(seed=21, population=30,
                                        duration=300.0, warmup=120.0))
    probe = result.probe()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "probe-trace.jsonl"
        count = probe.trace.save_jsonl(path)
        size_kb = path.stat().st_size / 1024
        print(f"saved {count} packets to {path.name} ({size_kb:.0f} KiB)")

        reloaded = TraceStore.load_jsonl(path)
        report = match_all(reloaded)
        print(f"reloaded and re-matched: {len(report.data)} data "
              f"transactions, {len(report.peer_lists)} peer-list "
              f"transactions")

        live_txns = probe.report.data
        assert len(report.data) == len(live_txns), "round-trip mismatch"

        counts = requests_per_peer(report.data, result.infrastructure)
        estimates = rtt_estimates(report.data, result.infrastructure)
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
        print()
        print("top peers by data requests (from the reloaded trace):")
        for address, n in top:
            print(f"  {address}: {n} requests, "
                  f"RTT est {estimates[address] * 1000:.0f} ms")

        analysis = analyze_requests_vs_rtt(report.data,
                                           result.infrastructure)
        if analysis.correlation is not None:
            print(f"log-log correlation (#requests vs RTT): "
                  f"{analysis.correlation:.3f}")


if __name__ == "__main__":
    main()
