#!/usr/bin/env python3
"""Flow telemetry: live ISP-level traffic accounting at constant memory.

The paper's headline numbers — how much traffic stays inside an ISP,
how much crosses AS boundaries — come from post-hoc analysis of packet
captures.  The `--flows` ledger produces the same accounting *while the
run executes*, network-wide, without keeping a single packet:

1. run a session with a :class:`FlowSpec` attached — every delivered
   datagram folds into an ISP x ISP matrix, tumbling locality windows
   and a bounded top-k flow sketch,
2. render the three live views (`repro flows matrix|windows|top`),
3. persist the payload as a versioned JSONL artifact and reload it —
   the recomputed summary matches the written footer exactly,
4. cross-check the ledger's network-wide locality against the probe's
   capture-based view of the same session.
"""

import tempfile
from pathlib import Path

from repro import ScenarioConfig, locality_breakdown, run_session
from repro.obs import (FlowSpec, FlowsWriter, intra_share, read_flows,
                       render_flow_matrix, render_flow_summary,
                       render_flow_top, render_flow_windows,
                       summarize_flows)


def main() -> None:
    print("running an instrumented session (flows ledger attached) ...")
    result = run_session(ScenarioConfig(
        seed=13, population=40, duration=420.0, warmup=150.0,
        flows=FlowSpec(window=60.0, top_k=20)))
    ledger = result.flows
    assert ledger is not None, "flows spec should attach a ledger"

    totals = ledger.totals
    print(f"accounted {totals['bytes'] / 1e6:.1f} MB in "
          f"{totals['datagrams']:,} datagrams, "
          f"transit share {ledger.transit_byte_share():.1%}")

    payload = ledger.snapshot_state()
    print()
    print(render_flow_matrix(payload))
    print()
    print(render_flow_windows(payload))
    print()
    print(render_flow_top(payload, limit=5))

    # The artifact round-trip: what `--flows PATH` writes, `repro flows`
    # reads.  The summary is recomputed from the unit records, so it is
    # verifiable against the footer the writer appended on close.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "flows.jsonl"
        writer = FlowsWriter(str(path), ledger.spec)
        writer.write_unit({"session": "tele-popular@seed13"}, payload)
        writer.close()

        records = read_flows(str(path))
        summary = summarize_flows(records)
        print()
        print(render_flow_summary(summary, source=path.name))
        assert summary["state"] == "finished"
        assert summary["totals"] == payload["totals"], \
            "reloaded artifact disagrees with the live ledger"

    # Two instruments, two vantage points: the ledger sees every
    # delivered datagram network-wide (clients, trackers, the source);
    # the probe's capture sees only its own download.  The paper's
    # locality effect shows in both, but the numbers legitimately
    # differ — only a campaign over matched populations makes them
    # coincide (tests/test_flows.py pins that equality exactly).
    probe = result.probe()
    b = locality_breakdown(probe.trace, probe.report.data,
                           result.directory, result.infrastructure)
    print()
    print(f"probe's capture-based download locality: {b.locality:.1%}")
    print(f"ledger's network-wide intra-ISP share:   "
          f"{intra_share(totals):.1%}")


if __name__ == "__main__":
    main()
