#!/usr/bin/env python3
"""Peer-selection strategy shoot-out (DESIGN.md ablations A1/A3).

Runs the same popular-channel workload under five peer-selection
policies and compares the resulting ISP-level traffic locality of a
ChinaTelecom probe:

* ``pplive-referral``      — the paper's decentralized, latency-based,
  neighbor-referral strategy (no topology input at all),
* ``tracker-only-random``  — the BitTorrent membership model,
* ``biased-neighbor``      — Bindal et al., ISP oracle at the tracker,
* ``ono``                  — CDN-based proximity estimation,
* ``p4p``                  — the provider-portal ISP oracle.

The paper's claim is that the first, infrastructure-free strategy gets
close to what the oracle-assisted designs achieve; the tracker-only
baseline shows what happens without any of it.
"""

from repro.experiments.ablations import policy_comparison


def main() -> None:
    print("running five policy variants (same workload, same seed) ...")
    result = policy_comparison(seed=7, population=45, duration=420.0)
    print()
    print(result.render())
    print()
    pplive = result.locality_of("pplive-referral")
    random_baseline = result.locality_of("tracker-only-random")
    if pplive is not None and random_baseline is not None:
        gain = pplive - random_baseline
        print(f"emergent locality gain over tracker-only random: "
              f"{gain:+.1%}")


if __name__ == "__main__":
    main()
