#!/usr/bin/env python3
"""Multi-seed reproduction with confidence intervals.

One simulated session is one draw; this example runs the popular-channel
TELE-probe workload across several seeds and reports bootstrap
confidence intervals for the headline metrics — the honest way to state
"the reproduction shows X".
"""

from repro.analysis import aggregate_sessions
from repro.workload import ScenarioConfig


def main() -> None:
    config = ScenarioConfig(population=35, duration=420.0, warmup=150.0)
    seeds = [1, 2, 3, 4, 5]
    print(f"running {len(seeds)} seeds of a "
          f"{config.population}-viewer popular channel ...")
    result = aggregate_sessions(config, seeds=seeds)
    print()
    print(result.render())
    print()
    estimate = result.locality_mean
    print(f"=> traffic locality: {estimate.value:.1%} "
          f"(95% CI {estimate.low:.1%} .. {estimate.high:.1%})")
    if result.correlation_mean is not None:
        corr = result.correlation_mean
        print(f"=> requests-vs-RTT correlation: {corr.value:+.2f} "
              f"(95% CI {corr.low:+.2f} .. {corr.high:+.2f}; "
              f"the paper reports -0.65 for this workload)")


if __name__ == "__main__":
    main()
