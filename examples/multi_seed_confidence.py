#!/usr/bin/env python3
"""Multi-seed reproduction with confidence intervals.

One simulated session is one draw; this example runs the popular-channel
TELE-probe workload across several seeds and reports bootstrap
confidence intervals for the headline metrics — the honest way to state
"the reproduction shows X".

The per-seed sessions are independent, so they fan out across worker
processes with ``--jobs N`` (byte-identical results for every N; see
docs/PARALLEL.md).
"""

import argparse

from repro.analysis import aggregate_metrics
from repro.parallel import run_seed_sweep
from repro.workload import ScenarioConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the per-seed "
                             "sessions (default: 1 = serial)")
    args = parser.parse_args()

    config = ScenarioConfig(population=35, duration=420.0, warmup=150.0)
    seeds = [1, 2, 3, 4, 5]
    print(f"running {len(seeds)} seeds of a "
          f"{config.population}-viewer popular channel "
          f"({args.jobs} worker{'s' if args.jobs != 1 else ''}) ...")
    per_seed = run_seed_sweep(config, seeds, jobs=args.jobs)
    result = aggregate_metrics(per_seed)
    print()
    print(result.render())
    print()
    estimate = result.locality_mean
    print(f"=> traffic locality: {estimate.value:.1%} "
          f"(95% CI {estimate.low:.1%} .. {estimate.high:.1%})")
    if result.correlation_mean is not None:
        corr = result.correlation_mean
        print(f"=> requests-vs-RTT correlation: {corr.value:+.2f} "
              f"(95% CI {corr.low:+.2f} .. {corr.high:+.2f}; "
              f"the paper reports -0.65 for this workload)")


if __name__ == "__main__":
    main()
