#!/usr/bin/env python3
"""Generate practical P2P streaming workloads from a fitted model.

The paper notes that its workload characterization "provides a basis to
generate practical P2P streaming workloads for simulation based
studies".  This example:

1. runs one measured probe session,
2. fits the :class:`SyntheticWorkloadModel` (SE request law, RTT trend,
   ISP mix, transaction geometry),
3. generates three statistically similar synthetic sessions of
   different sizes — in milliseconds, no protocol simulation — and
4. verifies the paper's signature statistics hold on the output.
"""

import random

from repro import ScenarioConfig, run_session
from repro.analysis import analyze_requests_vs_rtt, requests_per_peer
from repro.stats import (fit_stretched_exponential, fit_zipf,
                         top_fraction_share)
from repro.workload import SyntheticWorkloadModel


def main() -> None:
    print("running one measured session to fit the model ...")
    result = run_session(ScenarioConfig(seed=13, population=35,
                                        duration=420.0, warmup=150.0))
    model = SyntheticWorkloadModel.from_session(result)
    print(f"fitted: SE c={model.se_fit.c:.2f} a={model.se_fit.a:.2f} "
          f"(R^2={model.se_fit.r_squared:.4f}), "
          f"{model.n_peers} peers, "
          f"RTT trend slope={model.rtt_trend.slope:.4f}/rank")
    print(f"ISP mix: "
          + "  ".join(f"{c}={s:.0%}" for c, s in model.isp_shares.items()))

    rng = random.Random(99)
    for n_peers in (50, 200, 800):
        transactions = model.generate(rng, n_peers=n_peers,
                                      duration=7200.0)
        counts = sorted(requests_per_peer(transactions).values(),
                        reverse=True)
        se = fit_stretched_exponential(counts)
        zipf = fit_zipf(counts)
        top10 = top_fraction_share(counts, 0.10)
        rtt = analyze_requests_vs_rtt(transactions)
        print()
        print(f"synthetic session, {n_peers} peers, "
              f"{len(transactions)} transactions:")
        print(f"  SE fit: c={se.c:.2f}, R^2={se.r_squared:.4f} "
              f"(Zipf R^2={zipf.r_squared:.4f} — SE wins)")
        print(f"  top 10% of peers receive {top10:.0%} of requests")
        if rtt.correlation is not None:
            print(f"  log-log requests-vs-RTT correlation: "
                  f"{rtt.correlation:.3f}")


if __name__ == "__main__":
    main()
