#!/usr/bin/env python3
"""Chaos study: what faults do to continuity and traffic locality.

Runs the chaos experiment — the canonical TELE-probe popular session,
once clean and once under a fault script — and plots (in ASCII) the
probe's playback continuity and intra-ISP byte share across the fault
windows, plus the per-fault recovery report.

By default uses the committed two-fault script (a full tracker outage,
then congestion on the TELE<->CNC peering link), timed for the small
scale; pass another script to study your own storm::

    python examples/chaos_study.py
    python examples/chaos_study.py my_storm.json
"""

import sys
from pathlib import Path

from repro.experiments.base import Scale
from repro.experiments.chaos import run_chaos
from repro.faults import FaultSchedule

DEFAULT_SCRIPT = Path(__file__).parent / "faults" / "chaos_demo.json"

BAR_WIDTH = 40


def bar(value, width=BAR_WIDTH):
    if value is None:
        return "(no data)"
    filled = int(round(value * width))
    return "#" * filled + "." * (width - filled) + f" {100 * value:5.1f}%"


def fault_marks(result, time, bin_seconds):
    """Labels of faults active (or striking) during the bin ending at
    ``time``."""
    marks = []
    for index, event in enumerate(result.schedule.events):
        if event.start < time + 1e-9 and event.end > time - bin_seconds:
            marks.append(result.schedule.name_of(index))
    return marks


def main() -> None:
    script = Path(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_SCRIPT
    schedule = FaultSchedule.load(script)
    print(f"chaos study: {len(schedule)} faults from {script}")
    print("simulating the clean and faulted sessions ...")
    print()
    result = run_chaos(schedule=schedule, scale=Scale.SMALL)

    bin_seconds = result.params.bin_seconds
    for title, metric in (("playback continuity", "continuity"),
                          ("intra-ISP byte share", "locality")):
        print(f"--- {title} per {bin_seconds:.0f}s bin "
              f"(faulted run | clean baseline) ---")
        base_by_time = {b.time: b for b in result.baseline.bins}
        for sample in result.faulted.bins:
            reference = base_by_time.get(sample.time)
            faulted_value = getattr(sample, metric)
            base_value = getattr(reference, metric) if reference else None
            marks = fault_marks(result, sample.time, bin_seconds)
            suffix = f"   <- {', '.join(marks)}" if marks else ""
            print(f"  t={sample.time:6.0f}s  {bar(faulted_value)}"
                  f"  | base {bar(base_value, 0).strip()}{suffix}")
        print()

    print(result.render())
    if result.all_recovered:
        print()
        print("every fault recovered: continuity and locality returned "
              "to within tolerance of the clean baseline.")


if __name__ == "__main__":
    main()
